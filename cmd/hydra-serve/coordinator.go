package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hydra"
	"hydra/internal/faultpoint"
)

// The coordinator is hydra-serve's scatter-gather mode (-shards): one
// collection split across N shard servers (each started with -shard i/n),
// every query fanned out to all of them over HTTP and the per-shard top-k
// answers merged through hydra.Gather. Because the shards partition the
// collection and each returns its local top-k with globally remapped IDs,
// the merge is bit-identical to a single whole-collection engine whenever
// every shard answers.
//
// The fan-out path is hardened end to end:
//
//   - every shard call runs under its own per-attempt deadline
//     (-shard-timeout) with up to -shard-retries retries under exponential
//     backoff + jitter;
//   - a hedged duplicate is launched when a call outlives the shard's
//     observed p99 latency (-hedge-after 0 = adaptive; a fixed duration
//     pins it; negative disables). First success wins, the loser is
//     cancelled, and the Gather fold-once-per-source rule makes
//     double-counting structurally impossible;
//   - a per-shard circuit breaker (-breaker-failures/-breaker-cooldown)
//     skips shards that keep failing, and a background /readyz prober
//     (-probe-interval) feeds the same breaker so a recovered shard is
//     re-admitted without burning a client request on the discovery;
//   - quorum semantics: if at least -min-shards answered, the merged
//     best-so-far is returned with "partial":true and a per-shard status
//     block; below quorum the query fails 503 + Retry-After.
//
// The rpc/* faultpoints (error, slow, drop, flap) are compiled into the
// client-side attempt path — each retry and hedge traverses them
// independently — so the whole degradation ladder is drillable from tests
// and HYDRA_FAULTPOINTS. The background prober deliberately bypasses them:
// drills shape query traffic, while recovery tracks the shard's real
// health, keeping "disarm ⇒ exact answers again" deterministic.
//
// Coordinator stats aggregation: the per-query cost counters of answering
// shards are summed (the coordinator does not recompute derived ratios such
// as pruning, which need whole-collection totals the shards own).

// coordConfig carries the coordinator's fan-out policy, one field per flag.
type coordConfig struct {
	timeout       time.Duration // whole-request deadline (0 = none)
	shardTimeout  time.Duration // per-attempt deadline for one shard call
	retries       int           // extra attempts per shard call after the first
	retryBackoff  time.Duration // base backoff before the first retry
	hedgeAfter    time.Duration // 0 = adaptive p99, <0 = hedging off
	minShards     int           // quorum: fewer answers fail the request
	breakerFails  int           // consecutive failures that open a breaker
	breakerCool   time.Duration // open-breaker cooldown before a half-open trial
	probeInterval time.Duration // background /readyz probe period
	accessLog     bool
}

// shardClient is the coordinator's view of one shard server: its address,
// circuit breaker, latency history (for the adaptive hedge delay), and
// cumulative fan-out counters.
type shardClient struct {
	addr string
	hc   *http.Client
	br   *breaker
	lat  *latencyRing

	requests      atomic.Int64 // shard calls attempted (post-breaker)
	failures      atomic.Int64 // shard calls that exhausted every attempt
	retries       atomic.Int64 // retry attempts launched
	hedges        atomic.Int64 // hedged duplicates launched
	probeFailures atomic.Int64 // background probe failures
}

type coordinator struct {
	cfg      coordConfig
	shards   []*shardClient
	started  time.Time
	draining atomic.Bool
}

// newCoordinator builds the shard client pool. Addresses without a scheme
// get "http://"; all clients share one transport so idle connections are
// pooled per shard.
func newCoordinator(addrs []string, cfg coordConfig) *coordinator {
	if cfg.minShards < 1 {
		cfg.minShards = 1
	}
	tr := &http.Transport{MaxIdleConnsPerHost: 64}
	c := &coordinator{cfg: cfg, started: time.Now()}
	for i, addr := range addrs {
		addr = strings.TrimRight(strings.TrimSpace(addr), "/")
		if !strings.Contains(addr, "://") {
			addr = "http://" + addr
		}
		c.shards = append(c.shards, &shardClient{
			addr: addr,
			hc:   &http.Client{Transport: tr},
			br:   newBreaker(cfg.breakerFails, cfg.breakerCool, int64(i+1)),
			lat:  &latencyRing{},
		})
	}
	return c
}

func (c *coordinator) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", c.admitted(c.handleQuery))
	mux.HandleFunc("/batch", c.admitted(c.handleBatch))
	mux.HandleFunc("/healthz", c.handleHealthz)
	mux.HandleFunc("/readyz", c.handleReadyz)
	mux.HandleFunc("/statusz", c.handleStatusz)
	h := recovered(mux)
	if c.cfg.accessLog {
		return identified(h)
	}
	return identifiedQuiet(h)
}

// startDrain flips the coordinator not-ready, mirroring server.startDrain.
func (c *coordinator) startDrain() { c.draining.Store(true) }

// admitted refuses new fan-outs once draining, with the same jittered
// Retry-After contract as the single-engine server.
func (c *coordinator) admitted(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if c.draining.Load() {
			w.Header().Set("Retry-After", retryAfterJitter(retryAfterSpread))
			writeError(w, r, http.StatusServiceUnavailable, "draining")
			return
		}
		next(w, r)
	}
}

// shardStatusJSON is one shard's outcome inside a coordinator response: how
// the fan-out to it went and where its breaker stands. State is "ok"
// (answered), "failed" (every attempt failed) or "skipped" (breaker open —
// the shard was not asked).
type shardStatusJSON struct {
	Addr    string `json:"addr"`
	State   string `json:"state"`
	Error   string `json:"error,omitempty"`
	Retries int64  `json:"retries,omitempty"`
	Hedged  bool   `json:"hedged,omitempty"`
	Breaker string `json:"breaker"`
}

// scatter fans one request body out to every shard and returns the raw 200
// bodies (nil for shards that failed or were skipped) plus the per-shard
// status block.
func (c *coordinator) scatter(ctx context.Context, path string, body []byte, rid string) ([][]byte, []shardStatusJSON) {
	raws := make([][]byte, len(c.shards))
	statuses := make([]shardStatusJSON, len(c.shards))
	var wg sync.WaitGroup
	for i, sc := range c.shards {
		wg.Add(1)
		go func(i int, sc *shardClient) {
			defer wg.Done()
			raws[i], statuses[i] = c.callShard(ctx, sc, path, body, rid)
		}(i, sc)
	}
	wg.Wait()
	return raws, statuses
}

// callShard runs one shard call end to end: breaker admission, the
// retry/hedge exchange, counter updates, status block.
func (c *coordinator) callShard(ctx context.Context, sc *shardClient, path string, body []byte, rid string) ([]byte, shardStatusJSON) {
	st := shardStatusJSON{Addr: sc.addr}
	if !sc.br.allow(time.Now()) {
		st.State = "skipped"
		st.Error = "circuit breaker open"
		st.Breaker, _ = sc.br.snapshot()
		return nil, st
	}
	sc.requests.Add(1)
	raw, retries, hedged, err := c.exchange(ctx, sc, path, body, rid)
	st.Retries = retries
	st.Hedged = hedged
	if err != nil {
		sc.failures.Add(1)
		st.State = "failed"
		st.Error = err.Error()
	} else {
		st.State = "ok"
	}
	st.Breaker, _ = sc.br.snapshot()
	return raw, st
}

// exchange races the primary attempt loop against an optional hedged
// duplicate: the hedge launches when the primary outlives the hedge delay,
// the first success wins and cancels the other copy. Each copy runs its own
// retry loop, so a hedge is a genuinely independent second path to the
// shard, not a shared fate.
func (c *coordinator) exchange(parent context.Context, sc *shardClient, path string, body []byte, rid string) (raw []byte, retries int64, hedged bool, err error) {
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	var retryCount atomic.Int64
	type res struct {
		raw []byte
		err error
	}
	ch := make(chan res, 2)
	run := func() {
		r, e := c.attempts(ctx, sc, path, body, rid, &retryCount)
		ch <- res{r, e}
	}
	go run()
	var hedgeTimer <-chan time.Time
	if d := c.hedgeDelay(sc); d >= 0 {
		hedgeTimer = time.After(d)
	}
	pending := 1
	var lastErr error
	for {
		select {
		case r := <-ch:
			if r.err == nil {
				return r.raw, retryCount.Load(), hedged, nil
			}
			lastErr = r.err
			if pending--; pending == 0 {
				return nil, retryCount.Load(), hedged, lastErr
			}
		case <-hedgeTimer:
			hedgeTimer = nil
			hedged = true
			sc.hedges.Add(1)
			pending++
			go run()
		}
	}
}

// hedgeDelay resolves when to launch the hedged duplicate for this shard:
// fixed when configured, otherwise the shard's observed p99 (bounded by the
// per-attempt timeout; a quarter of it before any history exists), -1 when
// hedging is off.
func (c *coordinator) hedgeDelay(sc *shardClient) time.Duration {
	switch {
	case c.cfg.hedgeAfter < 0:
		return -1
	case c.cfg.hedgeAfter > 0:
		return c.cfg.hedgeAfter
	}
	d := sc.lat.quantile(0.99)
	if d <= 0 {
		d = c.cfg.shardTimeout / 4
	}
	if c.cfg.shardTimeout > 0 && d > c.cfg.shardTimeout {
		d = c.cfg.shardTimeout
	}
	return d
}

// attempts is one copy's retry loop: up to 1+retries tries, each under its
// own per-attempt deadline, separated by exponential backoff with full
// jitter. Non-retriable failures (a shard's 4xx — resending the same bad
// request cannot succeed) stop the loop early.
func (c *coordinator) attempts(ctx context.Context, sc *shardClient, path string, body []byte, rid string, retryCount *atomic.Int64) ([]byte, error) {
	backoff := c.cfg.retryBackoff
	if backoff <= 0 {
		backoff = time.Millisecond
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		raw, err := c.attempt(ctx, sc, path, body, rid)
		if err == nil {
			return raw, nil
		}
		lastErr = err
		// A dead exchange context means this copy lost (or the request is
		// over): retrying would only burn attempts against a result nobody
		// will read.
		if !retriable(err) || ctx.Err() != nil || attempt >= c.cfg.retries {
			return nil, lastErr
		}
		retryCount.Add(1)
		sc.retries.Add(1)
		delay := backoff + time.Duration(rand.Int63n(int64(backoff)))
		backoff *= 2
		select {
		case <-ctx.Done():
			return nil, lastErr
		case <-time.After(delay):
		}
	}
}

// attempt is a single HTTP try against the shard under the per-attempt
// deadline. The rpc/* faultpoints fire here, client-side, before the wire —
// each retry and hedge traverses them independently, which is what makes
// the drills exercise the retry/hedge/breaker machinery rather than a
// single shot. Every outcome feeds the breaker; successes also feed the
// latency ring behind adaptive hedging.
func (c *coordinator) attempt(ctx context.Context, sc *shardClient, path string, body []byte, rid string) ([]byte, error) {
	actx := ctx
	if c.cfg.shardTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, c.cfg.shardTimeout)
		defer cancel()
	}
	start := time.Now()
	raw, err := func() ([]byte, error) {
		if err := faultpoint.Err(faultpoint.RPCError); err != nil {
			return nil, err
		}
		if err := faultpoint.Flap(faultpoint.RPCFlap); err != nil {
			return nil, err
		}
		faultpoint.Delay(faultpoint.RPCSlow)
		if err := faultpoint.Drop(faultpoint.RPCDrop, actx); err != nil {
			return nil, err
		}
		req, err := http.NewRequestWithContext(actx, http.MethodPost, sc.addr+path, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		if rid != "" {
			req.Header.Set(requestIDHeader, rid)
		}
		resp, err := sc.hc.Do(req)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(io.LimitReader(resp.Body, maxRequestBytes))
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, &shardHTTPError{status: resp.StatusCode, msg: shardErrMsg(data)}
		}
		return data, nil
	}()
	if err != nil {
		// A cancelled attempt — the losing hedge copy after its sibling won,
		// or the client going away — says nothing about the shard's health;
		// only failures of a still-wanted attempt feed the breaker.
		// (ctx here is the exchange context, cancelled on first success; the
		// per-attempt deadline expiring leaves it live, so real timeouts
		// still count.)
		if ctx.Err() == nil {
			sc.br.failure(time.Now())
		}
		return nil, err
	}
	sc.br.success()
	sc.lat.add(time.Since(start))
	return raw, nil
}

// shardHTTPError is a non-200 shard answer, carrying the status that
// decides retriability.
type shardHTTPError struct {
	status int
	msg    string
}

func (e *shardHTTPError) Error() string {
	if e.msg == "" {
		return fmt.Sprintf("shard answered %d", e.status)
	}
	return fmt.Sprintf("shard answered %d: %s", e.status, e.msg)
}

// retriable reports whether a failed attempt is worth retrying: network
// errors, timeouts, injected faults and shard 5xx all are; a shard 4xx is
// the request's own fault and would fail identically on every retry.
func retriable(err error) bool {
	var she *shardHTTPError
	if asShardHTTPError(err, &she) {
		return she.status >= 500 || she.status == http.StatusTooManyRequests
	}
	return true
}

// asShardHTTPError unwraps err into a *shardHTTPError (errors.As without
// the reflection import weight).
func asShardHTTPError(err error, target **shardHTTPError) bool {
	for err != nil {
		if she, ok := err.(*shardHTTPError); ok {
			*target = she
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// shardErrMsg extracts the shard's JSON error message from a non-200 body,
// falling back to a trimmed raw prefix.
func shardErrMsg(data []byte) string {
	var er errorResponse
	if json.Unmarshal(data, &er) == nil && er.Error != "" {
		return er.Error
	}
	s := strings.TrimSpace(string(data))
	if len(s) > 120 {
		s = s[:120]
	}
	return s
}

// handleQuery fans one query out to every shard and merges the per-shard
// top-k through hydra.Gather. All shards answered: the merge is exactly the
// whole-collection answer. Some failed but quorum held: merged best-so-far,
// "partial":true, per-shard status attached. Below quorum: 503 +
// Retry-After with the status block in the error body.
func (c *coordinator) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.K <= 0 {
		req.K = 1
	}
	body, err := json.Marshal(req)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, fmt.Sprintf("bad request: %v", err))
		return
	}
	ctx, cancel := c.requestContext(r)
	defer cancel()
	raws, statuses := c.scatter(ctx, "/query", body, requestID(r))

	g := hydra.NewGather(req.K)
	var agg statsJSON
	answered, partial := 0, false
	for i, raw := range raws {
		if raw == nil {
			continue
		}
		var qr queryResponse
		if err := json.Unmarshal(raw, &qr); err != nil {
			statuses[i].State = "failed"
			statuses[i].Error = fmt.Sprintf("bad shard response: %v", err)
			continue
		}
		answered++
		if qr.Partial {
			partial = true
		}
		matches := make([]hydra.Match, len(qr.Matches))
		for j, m := range qr.Matches {
			matches[j] = hydra.Match{ID: m.ID, Dist: m.Dist}
		}
		g.Fold(c.shards[i].addr, matches)
		addStats(&agg, qr.Stats)
	}
	if answered < c.cfg.minShards {
		c.writeQuorumError(w, r, answered, statuses)
		return
	}
	if answered < len(c.shards) {
		partial = true
	}
	writeJSON(w, http.StatusOK, queryResponse{
		Matches: toMatchJSON(g.Results(), 0),
		Partial: partial,
		Stats:   agg,
		Shards:  statuses,
	})
}

// handleBatch fans the whole batch out to every shard and merges each
// query's per-shard answers independently, preserving the single-engine
// batch contract: queries are isolated, one query's failure never voids its
// siblings.
func (c *coordinator) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.K <= 0 {
		req.K = 1
	}
	body, err := json.Marshal(req)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, fmt.Sprintf("bad request: %v", err))
		return
	}
	ctx, cancel := c.requestContext(r)
	defer cancel()
	raws, statuses := c.scatter(ctx, "/batch", body, requestID(r))

	perShard := make([]*batchResponse, len(raws))
	answered := 0
	for i, raw := range raws {
		if raw == nil {
			continue
		}
		var br batchResponse
		if err := json.Unmarshal(raw, &br); err != nil || len(br.Results) != len(req.Queries) {
			statuses[i].State = "failed"
			statuses[i].Error = "bad shard response: result count mismatch"
			continue
		}
		perShard[i] = &br
		answered++
	}
	if answered < c.cfg.minShards {
		c.writeQuorumError(w, r, answered, statuses)
		return
	}
	results := make([]batchResult, len(req.Queries))
	for qi := range req.Queries {
		g := hydra.NewGather(req.K)
		folded, firstErr := 0, ""
		for i, br := range perShard {
			if br == nil {
				continue
			}
			res := br.Results[qi]
			if res.Error != "" {
				if firstErr == "" {
					firstErr = res.Error
				}
				continue
			}
			matches := make([]hydra.Match, len(res.Matches))
			for j, m := range res.Matches {
				matches[j] = hydra.Match{ID: m.ID, Dist: m.Dist}
			}
			g.Fold(c.shards[i].addr, matches)
			folded++
		}
		if folded == 0 {
			if firstErr == "" {
				firstErr = "no shard answered"
			}
			results[qi] = batchResult{Error: firstErr}
			continue
		}
		results[qi] = batchResult{Matches: toMatchJSON(g.Results(), 0)}
	}
	writeJSON(w, http.StatusOK, batchResponse{
		Results: results,
		Partial: answered < len(c.shards),
		Shards:  statuses,
	})
}

// writeQuorumError answers a below-quorum fan-out: 503 with jittered
// Retry-After and the per-shard status block, so the client sees both that
// it should come back and why the quorum failed.
func (c *coordinator) writeQuorumError(w http.ResponseWriter, r *http.Request, answered int, statuses []shardStatusJSON) {
	w.Header().Set("Retry-After", retryAfterJitter(retryAfterSpread))
	writeJSON(w, http.StatusServiceUnavailable, errorResponse{
		Error:     fmt.Sprintf("quorum failed: %d/%d shards answered (min %d)", answered, len(c.shards), c.cfg.minShards),
		RequestID: requestID(r),
		Shards:    statuses,
	})
}

func (c *coordinator) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if c.cfg.timeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), c.cfg.timeout)
}

// addStats sums the shard's per-query cost counters into the aggregate;
// identity fields (device, mode) are taken from the first answering shard.
func addStats(agg *statsJSON, s statsJSON) {
	agg.DistCalcs += s.DistCalcs
	agg.LBCalcs += s.LBCalcs
	agg.Examined += s.Examined
	agg.SeqOps += s.SeqOps
	agg.RandOps += s.RandOps
	agg.CPUMicros += s.CPUMicros
	agg.SimMicros += s.SimMicros
	agg.NodesVisited += s.NodesVisited
	if agg.DeviceModel == "" {
		agg.DeviceModel = s.DeviceModel
	}
	if agg.Mode == "" {
		agg.Mode = s.Mode
		agg.Epsilon = s.Epsilon
		agg.Delta = s.Delta
	}
	if agg.EarlyStop == "" {
		agg.EarlyStop = s.EarlyStop
	}
}

// coordHealthzResponse is the coordinator's /healthz body: topology facts
// and how many shards its breakers would currently admit.
type coordHealthzResponse struct {
	Status    string `json:"status"`
	Mode      string `json:"mode"`
	Shards    int    `json:"shards"`
	Available int    `json:"available"`
	MinShards int    `json:"min_shards"`
	UptimeSec int64  `json:"uptime_sec"`
}

func (c *coordinator) available(now time.Time) int {
	n := 0
	for _, sc := range c.shards {
		if sc.br.ready(now) {
			n++
		}
	}
	return n
}

func (c *coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, r, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, coordHealthzResponse{
		Status:    "ok",
		Mode:      "coordinator",
		Shards:    len(c.shards),
		Available: c.available(time.Now()),
		MinShards: c.cfg.minShards,
		UptimeSec: int64(time.Since(c.started).Seconds()),
	})
}

// handleReadyz reports whether the coordinator can currently meet its
// quorum: 503 while draining or while fewer than -min-shards shards are
// admissible, 200 otherwise.
func (c *coordinator) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, r, http.StatusMethodNotAllowed, "GET only")
		return
	}
	avail := c.available(time.Now())
	resp := coordHealthzResponse{
		Status:    "ready",
		Mode:      "coordinator",
		Shards:    len(c.shards),
		Available: avail,
		MinShards: c.cfg.minShards,
		UptimeSec: int64(time.Since(c.started).Seconds()),
	}
	switch {
	case c.draining.Load():
		resp.Status = "draining"
		writeJSON(w, http.StatusServiceUnavailable, resp)
	case avail < c.cfg.minShards:
		resp.Status = "degraded"
		writeJSON(w, http.StatusServiceUnavailable, resp)
	default:
		writeJSON(w, http.StatusOK, resp)
	}
}

// statuszResponse is the coordinator's /statusz body: cumulative fan-out
// counters and latency quantiles per shard — the numbers hydraload records
// next to its tail latencies.
type statuszResponse struct {
	Mode      string          `json:"mode"`
	UptimeSec int64           `json:"uptime_sec"`
	Shards    []shardStatJSON `json:"shards"`
}

type shardStatJSON struct {
	Addr          string `json:"addr"`
	Breaker       string `json:"breaker"`
	Requests      int64  `json:"requests"`
	Failures      int64  `json:"failures"`
	Retries       int64  `json:"retries"`
	Hedges        int64  `json:"hedges"`
	BreakerOpens  int64  `json:"breaker_opens"`
	ProbeFailures int64  `json:"probe_failures"`
	P50Micros     int64  `json:"p50_us"`
	P99Micros     int64  `json:"p99_us"`
}

func (c *coordinator) handleStatusz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, r, http.StatusMethodNotAllowed, "GET only")
		return
	}
	resp := statuszResponse{
		Mode:      "coordinator",
		UptimeSec: int64(time.Since(c.started).Seconds()),
	}
	for _, sc := range c.shards {
		state, opens := sc.br.snapshot()
		resp.Shards = append(resp.Shards, shardStatJSON{
			Addr:          sc.addr,
			Breaker:       state,
			Requests:      sc.requests.Load(),
			Failures:      sc.failures.Load(),
			Retries:       sc.retries.Load(),
			Hedges:        sc.hedges.Load(),
			BreakerOpens:  opens,
			ProbeFailures: sc.probeFailures.Load(),
			P50Micros:     sc.lat.quantile(0.50).Microseconds(),
			P99Micros:     sc.lat.quantile(0.99).Microseconds(),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// probeLoop runs the background health prober until ctx is cancelled: every
// probeInterval, each shard's /readyz is checked and the result fed to its
// breaker. This is the recovery path — an open breaker closes the moment a
// probe succeeds after the cooldown, without spending a client request on
// the half-open trial.
func (c *coordinator) probeLoop(ctx context.Context) {
	t := time.NewTicker(c.cfg.probeInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			c.probeOnce(ctx)
		}
	}
}

// probeOnce checks every shard's /readyz concurrently. Probes bypass the
// rpc/* faultpoints on purpose: drills shape query traffic while recovery
// follows the shard's real health (see the package comment above).
func (c *coordinator) probeOnce(ctx context.Context) {
	var wg sync.WaitGroup
	for _, sc := range c.shards {
		wg.Add(1)
		go func(sc *shardClient) {
			defer wg.Done()
			c.probe(ctx, sc)
		}(sc)
	}
	wg.Wait()
}

func (c *coordinator) probe(ctx context.Context, sc *shardClient) {
	timeout := c.cfg.shardTimeout
	if timeout <= 0 {
		timeout = time.Second
	}
	pctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, sc.addr+"/readyz", nil)
	if err != nil {
		return
	}
	resp, err := sc.hc.Do(req)
	if err != nil {
		sc.probeFailures.Add(1)
		sc.br.failure(time.Now())
		return
	}
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		sc.probeFailures.Add(1)
		sc.br.failure(time.Now())
		return
	}
	sc.br.success()
}

// latencyRing is a fixed-size ring of recent successful-attempt latencies,
// the history behind the adaptive (p99-derived) hedge delay and the
// /statusz quantiles.
type latencyRing struct {
	mu  sync.Mutex
	buf [128]time.Duration
	n   int // filled entries
	i   int // next write position
}

func (l *latencyRing) add(d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf[l.i] = d
	l.i = (l.i + 1) % len(l.buf)
	if l.n < len(l.buf) {
		l.n++
	}
}

// quantile returns the q-th latency quantile over the ring (0 before any
// sample).
func (l *latencyRing) quantile(q float64) time.Duration {
	l.mu.Lock()
	s := make([]time.Duration, l.n)
	copy(s, l.buf[:l.n])
	l.mu.Unlock()
	if len(s) == 0 {
		return 0
	}
	sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
	idx := int(q * float64(len(s)))
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}
