package main

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"hydra"
)

// ingestTestServer builds an ingest-enabled UCR-Suite server over a small
// collection.
func ingestTestServer(t *testing.T, dir string) (*server, *hydra.Dataset) {
	t.Helper()
	d, err := hydra.Generate("synthetic", 200, 64, 5)
	if err != nil {
		t.Fatal(err)
	}
	e, err := hydra.Open("", hydra.WithData(d), hydra.WithIngestDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return newServer(e, time.Second, 0), d
}

// TestServeIngest pins the /ingest endpoint contract: a 200 means the batch
// is in the collection (Total grows), queries immediately see it, /statusz
// reports the WAL lag, and bad input is refused precisely.
func TestServeIngest(t *testing.T) {
	s, _ := ingestTestServer(t, t.TempDir())
	h := s.handler()

	row := make([]float32, 64)
	for i := range row {
		row[i] = float32(i%7) - 3
	}
	rec := postJSON(t, h, "/ingest", ingestRequest{Series: [][]float32{row, row}})
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest status %d: %s", rec.Code, rec.Body)
	}
	var resp ingestResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Appended != 2 || resp.Total != 202 {
		t.Fatalf("ingest response %+v, want 2 appended, 202 total", resp)
	}

	// The appended series is query-visible at once: its z-normalized self is
	// its own nearest neighbor at distance 0 (the engine stores appended
	// series z-normalized; NewWorkload normalizes the query identically).
	w, err := hydra.NewWorkload([][]float32{row})
	if err != nil {
		t.Fatal(err)
	}
	qrec := postJSON(t, h, "/query", queryRequest{Query: w.Query(0), K: 1})
	if qrec.Code != http.StatusOK {
		t.Fatalf("query status %d: %s", qrec.Code, qrec.Body)
	}
	var qresp queryResponse
	if err := json.Unmarshal(qrec.Body.Bytes(), &qresp); err != nil {
		t.Fatal(err)
	}
	if len(qresp.Matches) != 1 || qresp.Matches[0].ID < 200 || qresp.Matches[0].Dist != 0 {
		t.Fatalf("query after ingest: %+v, want an appended ID at distance 0", qresp.Matches)
	}

	// /statusz reports the ingestion counters.
	sreq := httptest.NewRequest(http.MethodGet, "/statusz", nil)
	srec := httptest.NewRecorder()
	h.ServeHTTP(srec, sreq)
	if srec.Code != http.StatusOK {
		t.Fatalf("statusz status %d", srec.Code)
	}
	var st engineStatuszResponse
	if err := json.Unmarshal(srec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Ingest == nil || st.Ingest.Appended != 2 || st.Ingest.WALLagSeries != 2 || st.Ingest.SyncPolicy != "always" {
		t.Fatalf("statusz ingest block %+v, want 2 appended/lagged under policy always", st.Ingest)
	}

	// Bad input: wrong length and empty batch refuse with 400, nothing
	// applied.
	if rec := postJSON(t, h, "/ingest", ingestRequest{Series: [][]float32{{1, 2}}}); rec.Code != http.StatusBadRequest {
		t.Fatalf("short series: status %d", rec.Code)
	}
	if rec := postJSON(t, h, "/ingest", ingestRequest{}); rec.Code != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d", rec.Code)
	}
	if s.engine.Len() != 202 {
		t.Fatalf("refused ingests changed the collection: %d", s.engine.Len())
	}
}

// TestServeIngestDisabled: without -ingest-dir the endpoint answers 501 and
// /statusz omits the ingest block.
func TestServeIngestDisabled(t *testing.T) {
	e, d := testEngine(t)
	h := newServer(e, time.Second, 0).handler()
	rec := postJSON(t, h, "/ingest", ingestRequest{Series: [][]float32{d.Series(0)}})
	if rec.Code != http.StatusNotImplemented {
		t.Fatalf("status %d, want 501", rec.Code)
	}
	sreq := httptest.NewRequest(http.MethodGet, "/statusz", nil)
	srec := httptest.NewRecorder()
	h.ServeHTTP(srec, sreq)
	var st engineStatuszResponse
	if err := json.Unmarshal(srec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Ingest != nil {
		t.Fatalf("read-only engine reported ingest block %+v", st.Ingest)
	}
}

// TestServeIngestDraining: a draining server refuses writes like reads —
// admission control covers /ingest.
func TestServeIngestDraining(t *testing.T) {
	s, d := ingestTestServer(t, t.TempDir())
	h := s.handler()
	s.startDrain()
	rec := postJSON(t, h, "/ingest", ingestRequest{Series: [][]float32{d.Series(0)}})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining ingest: status %d, want 503", rec.Code)
	}
	if s.engine.Len() != 200 {
		t.Fatalf("draining ingest applied: %d series", s.engine.Len())
	}
}

// TestServeIngestRecovery closes the loop over a real ingest directory: a
// server appends over HTTP, its engine closes, and a fresh engine over the
// same directory serves the appended series.
func TestServeIngestRecovery(t *testing.T) {
	dir := t.TempDir()
	s, _ := ingestTestServer(t, dir)
	h := s.handler()
	row := make([]float32, 64)
	for i := range row {
		row[i] = float32((i * 13) % 11)
	}
	if rec := postJSON(t, h, "/ingest", ingestRequest{Series: [][]float32{row}}); rec.Code != http.StatusOK {
		t.Fatalf("ingest status %d", rec.Code)
	}
	if err := s.engine.Close(); err != nil {
		t.Fatal(err)
	}

	d, err := hydra.Generate("synthetic", 200, 64, 5)
	if err != nil {
		t.Fatal(err)
	}
	e, err := hydra.Open("", hydra.WithData(d), hydra.WithIngestDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.Len() != 201 {
		t.Fatalf("recovered %d series, want 201", e.Len())
	}
	w, err := hydra.NewWorkload([][]float32{row})
	if err != nil {
		t.Fatal(err)
	}
	matches, err := e.Query(context.Background(), w.Query(0), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || matches[0].ID != 200 || matches[0].Dist != 0 {
		t.Fatalf("recovered query: %+v, want ID 200 at distance 0", matches)
	}
}
