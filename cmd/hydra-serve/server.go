package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"hydra"
)

// server is the HTTP front end over one hydra.Engine. It is built entirely
// on the public package — the proof that the library surface carries real
// traffic — and holds no state beyond the engine and the per-request
// deadline, so one instance serves any number of concurrent requests.
type server struct {
	engine  *hydra.Engine
	timeout time.Duration
	started time.Time
}

// newServer wires the endpoints: POST /query (one k-NN query), POST /batch
// (many queries, isolated failures), GET /healthz (liveness + engine
// facts).
func newServer(e *hydra.Engine, timeout time.Duration) *server {
	return &server{engine: e, timeout: timeout, started: time.Now()}
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/batch", s.handleBatch)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// matchJSON is the wire form of one k-NN answer.
type matchJSON struct {
	ID   int     `json:"id"`
	Dist float64 `json:"dist"`
}

// statsJSON is the wire form of the paper's per-query cost counters.
type statsJSON struct {
	DistCalcs   int64   `json:"dist_calcs"`
	LBCalcs     int64   `json:"lb_calcs"`
	Examined    int64   `json:"examined"`
	Pruning     float64 `json:"pruning_ratio"`
	SeqOps      int64   `json:"seq_ops"`
	RandOps     int64   `json:"rand_ops"`
	CPUMicros   int64   `json:"cpu_us"`
	SimMicros   int64   `json:"simulated_us"`
	DeviceModel string  `json:"device"`
}

type queryRequest struct {
	Query []float32 `json:"query"`
	K     int       `json:"k"`
}

type queryResponse struct {
	Matches []matchJSON `json:"matches"`
	Stats   statsJSON   `json:"stats"`
}

type batchRequest struct {
	Queries [][]float32 `json:"queries"`
	K       int         `json:"k"`
}

// batchResult is one query's outcome inside a batch: Matches on success,
// Error otherwise. Queries are isolated — a failed query never voids its
// siblings' answers (the engine's pinned QueryBatch semantics).
type batchResult struct {
	Matches []matchJSON `json:"matches,omitempty"`
	Error   string      `json:"error,omitempty"`
}

type batchResponse struct {
	Results []batchResult `json:"results"`
}

type healthzResponse struct {
	Status    string `json:"status"`
	Method    string `json:"method"`
	Series    int    `json:"series"`
	SeriesLen int    `json:"series_len"`
	SIMD      string `json:"simd"`
	UptimeSec int64  `json:"uptime_sec"`
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, healthzResponse{
		Status:    "ok",
		Method:    s.engine.Method(),
		Series:    s.engine.Len(),
		SeriesLen: s.engine.SeriesLen(),
		SIMD:      hydra.SIMDBackend(),
		UptimeSec: int64(time.Since(s.started).Seconds()),
	})
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !readJSON(w, r, &req) {
		return
	}
	k := req.K
	if k <= 0 {
		k = 1
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	matches, qs, err := s.engine.QueryWithStats(ctx, req.Query, k)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, queryResponse{
		Matches: toMatchJSON(matches),
		Stats: statsJSON{
			DistCalcs:   qs.DistCalcs,
			LBCalcs:     qs.LBCalcs,
			Examined:    qs.RawSeriesExamined,
			Pruning:     qs.PruningRatio(),
			SeqOps:      qs.IO.SeqOps,
			RandOps:     qs.IO.RandOps,
			CPUMicros:   qs.CPUTime.Microseconds(),
			SimMicros:   qs.TotalTime(s.engine.Device()).Microseconds(),
			DeviceModel: s.engine.Device().Name,
		},
	})
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !readJSON(w, r, &req) {
		return
	}
	k := req.K
	if k <= 0 {
		k = 1
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	results, errs := s.engine.QueryBatchErrors(ctx, req.Queries, k)
	// An error that voided the whole batch (e.g. the request deadline) is
	// reported at the HTTP level; a batch with any answers returns the
	// per-query split, each failure carrying its own cause.
	if first := firstError(errs); first != nil && allNil(results) {
		writeQueryError(w, first)
		return
	}
	resp := batchResponse{Results: make([]batchResult, len(results))}
	for i, m := range results {
		if errs[i] != nil {
			resp.Results[i] = batchResult{Error: errs[i].Error()}
			continue
		}
		resp.Results[i] = batchResult{Matches: toMatchJSON(m)}
	}
	writeJSON(w, http.StatusOK, resp)
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// requestContext derives the per-request deadline from the configured
// timeout on top of the client-disconnect cancellation http.Request
// already carries.
func (s *server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.timeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.timeout)
}

func toMatchJSON(matches []hydra.Match) []matchJSON {
	out := make([]matchJSON, len(matches))
	for i, m := range matches {
		out[i] = matchJSON{ID: m.ID, Dist: m.Dist}
	}
	return out
}

func allNil(results [][]hydra.Match) bool {
	for _, r := range results {
		if r != nil {
			return false
		}
	}
	return true
}

func readJSON(w http.ResponseWriter, r *http.Request, into any) bool {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err := dec.Decode(into); err != nil {
		http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

// maxRequestBytes bounds request bodies (a batch of thousands of length-256
// queries fits comfortably; unbounded bodies do not reach the decoder).
const maxRequestBytes = 64 << 20

func writeQueryError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		http.Error(w, "query deadline exceeded", http.StatusGatewayTimeout)
	case errors.Is(err, context.Canceled):
		// The client went away; the status is moot but 499-style close-out
		// keeps logs honest.
		http.Error(w, "request cancelled", 499)
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
