package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sync/atomic"
	"time"

	"hydra"
)

// server is the HTTP front end over one hydra.Engine. It is built entirely
// on the public package — the proof that the library surface carries real
// traffic — and holds no state beyond the engine, the per-request deadline,
// and the admission state, so one instance serves any number of concurrent
// requests.
type server struct {
	engine  *hydra.Engine
	timeout time.Duration
	started time.Time
	// idOffset maps the engine's shard-local match IDs back to positions in
	// the full collection (-shard mode); 0 for a whole-collection engine.
	idOffset int
	// accessLog enables the per-request access log line (on by default;
	// load-test topologies turn it off).
	accessLog bool
	// sem bounds concurrently admitted query requests (nil = unlimited): a
	// request that cannot take a slot immediately is refused with 503 +
	// Retry-After instead of queueing, so overload degrades into fast,
	// honest rejections rather than a growing latency tail.
	sem chan struct{}
	// draining flips when shutdown starts: query endpoints and /readyz
	// refuse new work (load balancers stop routing here) while in-flight
	// requests finish under http.Server.Shutdown.
	draining atomic.Bool
	// queryStats / motifStats count the two request families for /statusz:
	// admitted requests, in-flight, and recent p50/p99.
	queryStats endpointStats
	motifStats endpointStats
}

// newServer wires the endpoints: POST /query (one k-NN query), POST /batch
// (many queries, isolated failures), GET /healthz (liveness + engine
// facts), GET /readyz (admission state). maxInFlight bounds concurrently
// admitted query requests; 0 means unlimited. A shard engine (WithShard)
// is served with its match IDs remapped to full-collection positions.
func newServer(e *hydra.Engine, timeout time.Duration, maxInFlight int) *server {
	s := &server{engine: e, timeout: timeout, started: time.Now()}
	if maxInFlight > 0 {
		s.sem = make(chan struct{}, maxInFlight)
	}
	if _, _, offset, sharded := e.ShardInfo(); sharded {
		s.idOffset = offset
	}
	return s
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.admitted(s.handleQuery))
	mux.HandleFunc("/batch", s.admitted(s.handleBatch))
	mux.HandleFunc("/motif", s.admitted(s.handleMotif))
	mux.HandleFunc("/ingest", s.admitted(s.handleIngest))
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/statusz", s.handleStatusz)
	h := recovered(mux)
	if s.accessLog {
		return identified(h)
	}
	return identifiedQuiet(h)
}

// startDrain marks the server as draining: query endpoints and /readyz
// answer 503 from here on while already-admitted requests run to
// completion. Called before http.Server.Shutdown so load balancers see the
// instance go not-ready the moment the drain begins.
func (s *server) startDrain() { s.draining.Store(true) }

// errorResponse is the JSON body of every refused or failed request that
// does not reach a handler's own response shape. RequestID carries the
// request's identity so a refused client can quote the exact request in a
// bug report or log search.
type errorResponse struct {
	Error     string `json:"error"`
	RequestID string `json:"request_id,omitempty"`
	// Shards carries the coordinator's per-shard outcome block on fan-out
	// failures (quorum refusals), so a refused client sees which shards were
	// down; single-engine servers never set it.
	Shards []shardStatusJSON `json:"shards,omitempty"`
}

// writeError answers a request with a JSON error body carrying the
// request's ID — the one refusal shape of every non-2xx path.
func writeError(w http.ResponseWriter, r *http.Request, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg, RequestID: requestID(r)})
}

// retryAfterSpread bounds the jittered Retry-After of refused requests:
// clients are told to come back after 1-3 seconds, each drawing its own
// value, so a refused thundering herd does not re-arrive in lockstep.
const retryAfterSpread = 3

// admitted gates a query endpoint on the admission state: draining refuses
// outright, and when a max-in-flight bound is configured, a request that
// cannot take a slot without waiting is refused with 503 + Retry-After —
// shedding load immediately beats queueing it into a timeout.
func (s *server) admitted(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			w.Header().Set("Retry-After", retryAfterJitter(retryAfterSpread))
			writeError(w, r, http.StatusServiceUnavailable, "draining")
			return
		}
		if s.sem != nil {
			select {
			case s.sem <- struct{}{}:
				defer func() { <-s.sem }()
			default:
				w.Header().Set("Retry-After", retryAfterJitter(retryAfterSpread))
				writeError(w, r, http.StatusServiceUnavailable,
					fmt.Sprintf("overloaded: %d requests in flight", cap(s.sem)))
				return
			}
		}
		next(w, r)
	}
}

// recovered is the panic boundary shared by the single-engine server and
// the coordinator: a panic escaping any handler (a bug, or an armed
// query/panic faultpoint reaching the single-query path) is logged and
// answered as a 500 JSON error — one request's crash, not the process's.
// The engine holds no per-query mutable state, so serving continues
// unharmed.
func recovered(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				log.Printf("hydra-serve: panic serving %s rid=%s: %v", r.URL.Path, requestID(r), p)
				writeError(w, r, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", p))
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// matchJSON is the wire form of one k-NN answer.
type matchJSON struct {
	ID   int     `json:"id"`
	Dist float64 `json:"dist"`
}

// statsJSON is the wire form of the paper's per-query cost counters, plus
// the answering mode and its guarantee parameters for approximate requests.
type statsJSON struct {
	DistCalcs   int64   `json:"dist_calcs"`
	LBCalcs     int64   `json:"lb_calcs"`
	Examined    int64   `json:"examined"`
	Pruning     float64 `json:"pruning_ratio"`
	SeqOps      int64   `json:"seq_ops"`
	RandOps     int64   `json:"rand_ops"`
	CPUMicros   int64   `json:"cpu_us"`
	SimMicros   int64   `json:"simulated_us"`
	DeviceModel string  `json:"device"`

	NodesVisited int64   `json:"nodes_visited"`
	Mode         string  `json:"mode,omitempty"`
	Epsilon      float64 `json:"epsilon,omitempty"`
	Delta        float64 `json:"delta,omitempty"`
	EarlyStop    string  `json:"early_stop,omitempty"`
}

// approxRequest is the approximate-mode selection shared by /query and
// /batch requests. Empty/zero fields mean the server engine's own mode;
// any set field makes the request fully specify its mode (nothing is
// inherited, so "mode":"exact" forces exactness on any server).
type approxRequest struct {
	// Mode selects the answering mode: "exact", "ng", "delta-eps", "budget"
	// ("" = the server's default).
	Mode string `json:"mode,omitempty"`
	// Epsilon is the "delta-eps" mode's relative distance-error bound ε.
	Epsilon float64 `json:"epsilon,omitempty"`
	// Delta is the "delta-eps" mode's confidence δ ∈ (0, 1]; 0/1 keeps the
	// ε guarantee deterministic.
	Delta float64 `json:"delta,omitempty"`
	// NodeBudget bounds nodes visited ("budget" or "delta-eps" modes).
	NodeBudget int `json:"node_budget,omitempty"`
}

// isZero reports whether the request left every mode field unset.
func (a approxRequest) isZero() bool {
	return a.Mode == "" && a.Epsilon == 0 && a.Delta == 0 && a.NodeBudget == 0
}

// engineFor resolves the engine answering this request: the server's own
// engine when no mode field is set, otherwise one derived for exactly the
// requested mode. Derivation shares the built index — per-request modes
// cost an option parse, not a build.
func (a approxRequest) engineFor(s *server) (*hydra.Engine, error) {
	if a.isZero() {
		return s.engine, nil
	}
	return s.engine.WithQueryOptions(
		hydra.WithApproxMode(a.Mode),
		hydra.WithEpsilon(a.Epsilon),
		hydra.WithDelta(a.Delta),
		hydra.WithNodeBudget(a.NodeBudget),
	)
}

type queryRequest struct {
	Query []float32 `json:"query"`
	K     int       `json:"k"`
	approxRequest
}

type queryResponse struct {
	Matches []matchJSON `json:"matches"`
	Stats   statsJSON   `json:"stats"`
	// Partial marks a degraded answer: the query's deadline expired and
	// Matches holds the best-so-far candidates, not the proven exact top-k.
	// Only ever set when the engine was built with WithPartialOnDeadline
	// (the -partial flag); exact answers omit the field. The coordinator
	// additionally sets it when not every shard answered — the merge is the
	// best-so-far over the shards that did.
	Partial bool `json:"partial,omitempty"`
	// Shards is the coordinator's per-shard outcome block (fan-out state,
	// retries, hedging, breaker state per shard); single-engine servers
	// never set it.
	Shards []shardStatusJSON `json:"shards,omitempty"`
}

type batchRequest struct {
	Queries [][]float32 `json:"queries"`
	K       int         `json:"k"`
	approxRequest
}

// batchResult is one query's outcome inside a batch: Matches on success,
// Error otherwise. Queries are isolated — a failed query never voids its
// siblings' answers (the engine's pinned QueryBatch semantics).
type batchResult struct {
	Matches []matchJSON `json:"matches,omitempty"`
	Error   string      `json:"error,omitempty"`
}

type batchResponse struct {
	Results []batchResult `json:"results"`
	// Partial and Shards mirror queryResponse: coordinator-only degraded-
	// merge marker and per-shard outcome block.
	Partial bool              `json:"partial,omitempty"`
	Shards  []shardStatusJSON `json:"shards,omitempty"`
}

type healthzResponse struct {
	Status    string `json:"status"`
	Method    string `json:"method"`
	Series    int    `json:"series"`
	SeriesLen int    `json:"series_len"`
	SIMD      string `json:"simd"`
	UptimeSec int64  `json:"uptime_sec"`
	// Shard reports this instance's slice of a sharded collection; nil for
	// whole-collection servers.
	Shard *shardInfoJSON `json:"shard,omitempty"`
}

// shardInfoJSON is the placement block a -shard server reports in /healthz.
type shardInfoJSON struct {
	Index  int `json:"index"`
	Count  int `json:"count"`
	Offset int `json:"offset"`
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, r, http.StatusMethodNotAllowed, "GET only")
		return
	}
	resp := healthzResponse{
		Status:    "ok",
		Method:    s.engine.Method(),
		Series:    s.engine.Len(),
		SeriesLen: s.engine.SeriesLen(),
		SIMD:      hydra.SIMDBackend(),
		UptimeSec: int64(time.Since(s.started).Seconds()),
	}
	if idx, count, offset, sharded := s.engine.ShardInfo(); sharded {
		resp.Shard = &shardInfoJSON{Index: idx, Count: count, Offset: offset}
	}
	writeJSON(w, http.StatusOK, resp)
}

// readyzResponse reports the admission state: whether this instance should
// receive traffic, and how loaded it is (Capacity 0 = unlimited).
type readyzResponse struct {
	Status   string `json:"status"`
	InFlight int    `json:"in_flight"`
	Capacity int    `json:"capacity"`
}

// handleReadyz is the routing signal (distinct from /healthz liveness): 200
// while accepting work, 503 once draining — the first endpoint to go dark
// during shutdown, so balancers stop sending requests that would only be
// refused.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, r, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, readyzResponse{Status: "draining", InFlight: len(s.sem), Capacity: cap(s.sem)})
		return
	}
	writeJSON(w, http.StatusOK, readyzResponse{Status: "ready", InFlight: len(s.sem), Capacity: cap(s.sem)})
}

// ingestRequest is the wire form of POST /ingest: a batch of raw series to
// append durably. The server z-normalizes them like dataset ingestion.
type ingestRequest struct {
	Series [][]float32 `json:"series"`
}

// ingestResponse acknowledges a durable append: when it comes back 200 the
// batch survives kill -9 (per the engine's Append contract and the
// configured -wal-sync policy).
type ingestResponse struct {
	Appended int `json:"appended"`
	Total    int `json:"total"`
}

// handleIngest appends a batch through Engine.Append. It shares the query
// endpoints' admission control (drain and max-in-flight refusals), so an
// overloaded or draining server refuses writes the same honest way it
// refuses reads. Failures are precise: 501 when the server cannot ingest at
// all, 400 for bad input, 500 when the WAL write failed (the batch is
// unacked and recovery will not resurrect it).
func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req ingestRequest
	if !readJSON(w, r, &req) {
		return
	}
	if _, ok := s.engine.IngestStats(); !ok {
		writeError(w, r, http.StatusNotImplemented, "ingestion not enabled (start with -ingest-dir and an ingest-capable method)")
		return
	}
	if len(req.Series) == 0 {
		writeError(w, r, http.StatusBadRequest, "no series")
		return
	}
	for i, row := range req.Series {
		if len(row) != s.engine.SeriesLen() {
			writeError(w, r, http.StatusBadRequest,
				fmt.Sprintf("series %d has length %d, collection length %d", i, len(row), s.engine.SeriesLen()))
			return
		}
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	if err := s.engine.Append(ctx, req.Series...); err != nil {
		if errors.Is(err, hydra.ErrIngestUnsupported) {
			writeError(w, r, http.StatusNotImplemented, err.Error())
			return
		}
		writeError(w, r, http.StatusInternalServerError, fmt.Sprintf("append failed (batch not acked): %v", err))
		return
	}
	writeJSON(w, http.StatusOK, ingestResponse{Appended: len(req.Series), Total: s.engine.Len()})
}

// engineStatuszResponse is the single-engine /statusz body (the coordinator
// serves its own fan-out shape on the same path): engine facts plus the
// durable-ingestion counters when -ingest-dir is active.
type engineStatuszResponse struct {
	Method    string           `json:"method"`
	Series    int              `json:"series"`
	UptimeSec int64            `json:"uptime_sec"`
	Ingest    *ingestStatsJSON `json:"ingest,omitempty"`
	// Query counts /query + /batch traffic; Motif counts /motif.
	Query *endpointStatsJSON `json:"query,omitempty"`
	Motif *endpointStatsJSON `json:"motif,omitempty"`
}

// ingestStatsJSON is the wire form of hydra.IngestStats. WALLag* measure
// how far the log has run ahead of the last checkpoint — the number a
// checkpoint cron watches.
type ingestStatsJSON struct {
	Appended      int64  `json:"appended"`
	Recovered     int64  `json:"recovered"`
	WALLagRecords int64  `json:"wal_lag_records"`
	WALLagSeries  int64  `json:"wal_lag_series"`
	WALBytes      int64  `json:"wal_bytes"`
	Syncs         int64  `json:"syncs"`
	Checkpoints   int64  `json:"checkpoints"`
	SyncPolicy    string `json:"sync_policy"`
}

// handleStatusz reports engine state and ingestion/WAL counters; unlike
// /readyz it keeps answering while draining (it is how operators watch the
// drain-time checkpoint land).
func (s *server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, r, http.StatusMethodNotAllowed, "GET only")
		return
	}
	resp := engineStatuszResponse{
		Method:    s.engine.Method(),
		Series:    s.engine.Len(),
		UptimeSec: int64(time.Since(s.started).Seconds()),
		Query:     s.queryStats.snapshot(),
		Motif:     s.motifStats.snapshot(),
	}
	if st, ok := s.engine.IngestStats(); ok {
		resp.Ingest = &ingestStatsJSON{
			Appended:      st.Appended,
			Recovered:     st.Recovered,
			WALLagRecords: st.WALRecords,
			WALLagSeries:  st.WALSeries,
			WALBytes:      st.WALBytes,
			Syncs:         st.Syncs,
			Checkpoints:   st.Checkpoints,
			SyncPolicy:    st.SyncPolicy,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !readJSON(w, r, &req) {
		return
	}
	done := s.queryStats.track()
	defer done()
	k := req.K
	if k <= 0 {
		k = 1
	}
	engine, err := req.engineFor(s)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, fmt.Sprintf("bad request: %v", err))
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	matches, qs, err := engine.QueryWithStats(ctx, req.Query, k)
	if err != nil {
		writeQueryError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, queryResponse{
		Matches: toMatchJSON(matches, s.idOffset),
		Partial: qs.Partial,
		Stats: statsJSON{
			DistCalcs:   qs.DistCalcs,
			LBCalcs:     qs.LBCalcs,
			Examined:    qs.RawSeriesExamined,
			Pruning:     qs.PruningRatio(),
			SeqOps:      qs.IO.SeqOps,
			RandOps:     qs.IO.RandOps,
			CPUMicros:   qs.CPUTime.Microseconds(),
			SimMicros:   qs.TotalTime(engine.Device()).Microseconds(),
			DeviceModel: engine.Device().Name,

			NodesVisited: qs.NodesVisited,
			Mode:         qs.Mode,
			Epsilon:      qs.Epsilon,
			Delta:        qs.Delta,
			EarlyStop:    qs.EarlyStop,
		},
	})
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !readJSON(w, r, &req) {
		return
	}
	done := s.queryStats.track()
	defer done()
	k := req.K
	if k <= 0 {
		k = 1
	}
	engine, err := req.engineFor(s)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, fmt.Sprintf("bad request: %v", err))
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	results, errs := engine.QueryBatchErrors(ctx, req.Queries, k)
	// An error that voided the whole batch (e.g. the request deadline) is
	// reported at the HTTP level; a batch with any answers returns the
	// per-query split, each failure carrying its own cause.
	if first := firstError(errs); first != nil && allNil(results) {
		writeQueryError(w, r, first)
		return
	}
	resp := batchResponse{Results: make([]batchResult, len(results))}
	for i, m := range results {
		if errs[i] != nil {
			resp.Results[i] = batchResult{Error: errs[i].Error()}
			continue
		}
		resp.Results[i] = batchResult{Matches: toMatchJSON(m, s.idOffset)}
	}
	writeJSON(w, http.StatusOK, resp)
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// requestContext derives the per-request deadline from the configured
// timeout on top of the client-disconnect cancellation http.Request
// already carries.
func (s *server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.timeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.timeout)
}

// toMatchJSON serializes matches, remapping shard-local IDs to
// full-collection positions by idOffset (0 for whole-collection engines).
func toMatchJSON(matches []hydra.Match, idOffset int) []matchJSON {
	out := make([]matchJSON, len(matches))
	for i, m := range matches {
		out[i] = matchJSON{ID: m.ID + idOffset, Dist: m.Dist}
	}
	return out
}

func allNil(results [][]hydra.Match) bool {
	for _, r := range results {
		if r != nil {
			return false
		}
	}
	return true
}

func readJSON(w http.ResponseWriter, r *http.Request, into any) bool {
	if r.Method != http.MethodPost {
		writeError(w, r, http.StatusMethodNotAllowed, "POST only")
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err := dec.Decode(into); err != nil {
		writeError(w, r, http.StatusBadRequest, fmt.Sprintf("bad request: %v", err))
		return false
	}
	return true
}

// maxRequestBytes bounds request bodies (a batch of thousands of length-256
// queries fits comfortably; unbounded bodies do not reach the decoder).
const maxRequestBytes = 64 << 20

func writeQueryError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, r, http.StatusGatewayTimeout, "query deadline exceeded")
	case errors.Is(err, context.Canceled):
		// The client went away; the status is moot but 499-style close-out
		// keeps logs honest.
		writeError(w, r, 499, "request cancelled")
	case errors.Is(err, hydra.ErrQueryPanic), errors.Is(err, hydra.ErrWorkerPanic):
		// A recovered query panic is the server's fault, not the client's.
		writeError(w, r, http.StatusInternalServerError, err.Error())
	default:
		writeError(w, r, http.StatusBadRequest, err.Error())
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
