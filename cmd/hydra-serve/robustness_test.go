package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"hydra"
	"hydra/internal/faultpoint"
)

// TestServeOverload pins admission control: with every in-flight slot
// taken, a query request is refused immediately with 503 + Retry-After, and
// admitted again as soon as a slot frees.
func TestServeOverload(t *testing.T) {
	e, d := testEngine(t)
	srv := newServer(e, time.Second, 2)
	h := srv.handler()
	q := d.Series(0)

	// Occupy both slots directly — the deterministic stand-in for two
	// requests parked inside their queries.
	srv.sem <- struct{}{}
	srv.sem <- struct{}{}

	rec := postJSON(t, h, "/query", queryRequest{Query: q, K: 1})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("overloaded query: status %d, want 503: %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("overload refusal should carry Retry-After")
	}
	var resp errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil || resp.Error == "" {
		t.Fatalf("overload refusal should be a JSON error, got %q (%v)", rec.Body, err)
	}

	// Batch requests share the same admission gate.
	rec = postJSON(t, h, "/batch", batchRequest{Queries: [][]float32{q}, K: 1})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("overloaded batch: status %d, want 503", rec.Code)
	}

	// Health stays reachable under overload — refusing queries must not
	// make the instance look dead.
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	hrec := httptest.NewRecorder()
	h.ServeHTTP(hrec, req)
	if hrec.Code != http.StatusOK {
		t.Fatalf("healthz under overload: status %d", hrec.Code)
	}

	<-srv.sem // one request finishes
	rec = postJSON(t, h, "/query", queryRequest{Query: q, K: 1})
	if rec.Code != http.StatusOK {
		t.Fatalf("after slot freed: status %d: %s", rec.Code, rec.Body)
	}
}

// TestServeReadyzDrain pins the shutdown sequence: /readyz flips to 503 the
// moment the drain starts and query endpoints refuse new work, while
// liveness stays green.
func TestServeReadyzDrain(t *testing.T) {
	e, d := testEngine(t)
	srv := newServer(e, time.Second, 4)
	h := srv.handler()

	req := httptest.NewRequest(http.MethodGet, "/readyz", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("readyz before drain: status %d", rec.Code)
	}
	var ready readyzResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &ready); err != nil {
		t.Fatal(err)
	}
	if ready.Status != "ready" || ready.Capacity != 4 || ready.InFlight != 0 {
		t.Fatalf("unexpected readyz: %+v", ready)
	}

	srv.startDrain()

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: status %d, want 503", rec.Code)
	}
	qrec := postJSON(t, h, "/query", queryRequest{Query: d.Series(0), K: 1})
	if qrec.Code != http.StatusServiceUnavailable {
		t.Fatalf("query during drain: status %d, want 503", qrec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz during drain: status %d, want 200", rec.Code)
	}
}

// TestServePanicRecovery drills the recovery middleware with the
// query/panic faultpoint: a panicking query answers 500 with a JSON error,
// and the same server keeps answering correctly once the fault clears.
func TestServePanicRecovery(t *testing.T) {
	e, d := testEngine(t)
	h := newServer(e, time.Second, 0).handler()
	q := d.Series(7)

	faultpoint.ArmN(faultpoint.QueryPanic, 1)
	defer faultpoint.Disarm(faultpoint.QueryPanic)
	rec := postJSON(t, h, "/query", queryRequest{Query: q, K: 1})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking query: status %d, want 500: %s", rec.Code, rec.Body)
	}
	var resp errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil || resp.Error == "" {
		t.Fatalf("panic answer should be a JSON error, got %q (%v)", rec.Body, err)
	}

	rec = postJSON(t, h, "/query", queryRequest{Query: q, K: 1})
	if rec.Code != http.StatusOK {
		t.Fatalf("server poisoned after panic: status %d: %s", rec.Code, rec.Body)
	}
	var ok queryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &ok); err != nil {
		t.Fatal(err)
	}
	if len(ok.Matches) != 1 || ok.Matches[0].ID != 7 {
		t.Fatalf("post-panic answer wrong: %+v", ok.Matches)
	}
}

// TestServePartialOnDeadline pins the degraded-serving contract: an engine
// built with WithPartialOnDeadline answers an expired deadline with 200 and
// "partial":true instead of the hard 504 TestServeDeadline pins for engines
// without the option.
func TestServePartialOnDeadline(t *testing.T) {
	d, err := hydra.Generate("synthetic", 400, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	e, err := hydra.Open("", hydra.WithData(d), hydra.WithPartialOnDeadline())
	if err != nil {
		t.Fatal(err)
	}
	h := newServer(e, time.Nanosecond, 0).handler()

	rec := postJSON(t, h, "/query", queryRequest{Query: d.Series(0), K: 1})
	if rec.Code != http.StatusOK {
		t.Fatalf("partial query: status %d, want 200: %s", rec.Code, rec.Body)
	}
	var resp queryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Partial {
		t.Fatalf("deadline-expired answer should be marked partial: %s", rec.Body)
	}

	// Without a deadline the same server answers exact, unmarked.
	h = newServer(e, 0, 0).handler()
	rec = postJSON(t, h, "/query", queryRequest{Query: d.Series(0), K: 1})
	if rec.Code != http.StatusOK {
		t.Fatalf("exact query: status %d: %s", rec.Code, rec.Body)
	}
	resp = queryResponse{}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Partial || len(resp.Matches) != 1 || resp.Matches[0].ID != 0 {
		t.Fatalf("exact answer wrong or mismarked: %s", rec.Body)
	}
}
