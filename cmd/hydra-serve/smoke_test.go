package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"syscall"
	"testing"
	"time"

	"hydra"
)

// TestServeSmokeEndToEnd is the CI apicheck smoke: it builds the real
// hydra-serve and hydra-query binaries, starts the server over a generated
// collection, issues an HTTP query, and checks the answer matches
// hydra-query's on the same data — the two front ends must agree because
// they share the one public engine. It finishes with a SIGTERM to exercise
// graceful shutdown.
func TestServeSmokeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end smoke builds binaries; skipped in -short")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	dir := t.TempDir()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}

	// Data and queries through the public API (what hydra-gen wraps).
	dataPath := filepath.Join(dir, "data.hyd")
	queryPath := filepath.Join(dir, "q.hyd")
	d, err := hydra.Generate("synthetic", 800, 64, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Save(dataPath); err != nil {
		t.Fatal(err)
	}
	wl := hydra.RandomWorkload(1, 64, 9)
	if err := wl.Save(queryPath); err != nil {
		t.Fatal(err)
	}

	build := func(name string) string {
		out := filepath.Join(dir, name)
		cmd := exec.Command(goBin, "build", "-o", out, "./cmd/"+name)
		cmd.Dir = root
		if blob, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, blob)
		}
		return out
	}
	serveBin := build("hydra-serve")
	queryBin := build("hydra-query")

	// The oracle: hydra-query -v prints every match.
	oracle := exec.Command(queryBin, "-data", dataPath, "-queries", queryPath,
		"-method", "UCR-Suite", "-k", "1", "-v")
	oracleOut, err := oracle.CombinedOutput()
	if err != nil {
		t.Fatalf("hydra-query: %v\n%s", err, oracleOut)
	}
	m := regexp.MustCompile(`q0 -> series (\d+) dist ([0-9.]+)`).FindSubmatch(oracleOut)
	if m == nil {
		t.Fatalf("no match line in hydra-query output:\n%s", oracleOut)
	}
	wantID, _ := strconv.Atoi(string(m[1]))
	wantDist, _ := strconv.ParseFloat(string(m[2]), 64)

	addr := freeAddr(t)
	srv := exec.Command(serveBin, "-data", dataPath, "-addr", addr, "-timeout", "10s")
	var srvLog bytes.Buffer
	srv.Stdout, srv.Stderr = &srvLog, &srvLog
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Process.Kill()

	if err := waitHealthy(addr, 10*time.Second); err != nil {
		t.Fatalf("server never became healthy: %v\n%s", err, srvLog.String())
	}

	blob, _ := json.Marshal(queryRequest{Query: wl.Query(0), K: 1})
	resp, err := http.Post("http://"+addr+"/query", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatalf("query: %v\n%s", err, srvLog.String())
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var qr queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Matches) != 1 {
		t.Fatalf("got %d matches, want 1", len(qr.Matches))
	}
	if qr.Matches[0].ID != wantID {
		t.Fatalf("HTTP answered series %d, hydra-query answered %d", qr.Matches[0].ID, wantID)
	}
	// hydra-query prints 6 decimals; compare at that precision.
	if math.Abs(qr.Matches[0].Dist-wantDist) > 5e-7 {
		t.Fatalf("HTTP dist %v, hydra-query dist %v", qr.Matches[0].Dist, wantDist)
	}

	// Graceful shutdown: SIGTERM must exit cleanly (status 0).
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("server exit after SIGTERM: %v\n%s", err, srvLog.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("server did not shut down within 10s\n%s", srvLog.String())
	}
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func waitHealthy(addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("timeout after %s", timeout)
}
