// Command hydra-serve exposes a similarity search engine as an HTTP/JSON
// service — the serving front end of the public hydra package, and a proof
// that the library API carries real traffic: the whole binary is built on
// the public surface only.
//
// Usage:
//
//	hydra-serve -data synth.hyd -addr :8080                 # UCR-Suite scan
//	hydra-serve -data synth.hyd -method DSTree -leaf 1000   # build an index, then serve
//	hydra-serve -data synth.hyd -index dstree.hydx          # serve a prebuilt snapshot
//
// Endpoints:
//
//	POST /query   {"query":[...],"k":1}      one exact k-NN query
//	POST /batch   {"queries":[[...]],"k":1}  a batch; failed queries are isolated
//	GET  /healthz                            liveness + engine facts
//	GET  /readyz                             admission state (503 while draining)
//
// Every request runs under the -timeout per-request deadline (and the
// client-disconnect context). With -partial (the default) a query that
// overruns its deadline answers 200 with the best-so-far matches and
// "partial":true instead of 504; -partial=false restores the hard 504.
// -max-inflight bounds concurrently admitted query requests — excess
// requests are refused immediately with 503 + Retry-After rather than
// queued into the latency tail. SIGINT/SIGTERM flip /readyz to 503 and
// drain in-flight requests before exit (graceful shutdown). Handler panics
// are recovered, logged, and answered as 500 — one request's failure never
// takes the process down.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hydra"
)

func main() {
	var (
		dataPath  = flag.String("data", "", "collection file (required)")
		method    = flag.String("method", "UCR-Suite", "method to build and serve")
		indexPath = flag.String("index", "", "index snapshot to load instead of building")
		addr      = flag.String("addr", ":8080", "listen address")
		timeout   = flag.Duration("timeout", 2*time.Second, "per-request query deadline (0 = none)")
		leafSize  = flag.Int("leaf", 0, "leaf size (0 = paper default scaled to collection)")
		device    = flag.String("device", "hdd", "device profile for reported simulated times: hdd|ssd")
		workers   = flag.Int("workers", 0, "intra-query scan parallelism (0 = serial, -1 = GOMAXPROCS)")
		batchW    = flag.Int("batch-workers", 0, "concurrent queries per /batch request (0 = GOMAXPROCS)")
		inflight  = flag.Int("max-inflight", 0, "max concurrently admitted query requests; excess answers 503 (0 = unlimited)")
		partial   = flag.Bool("partial", true, "answer deadline-expired queries with best-so-far results (partial:true) instead of 504")
	)
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "hydra-serve: "+format+"\n", args...)
		os.Exit(1)
	}
	if *dataPath == "" {
		fail("-data is required")
	}
	dev, err := hydra.DeviceByName(*device)
	if err != nil {
		fail("%v", err)
	}
	opts := []hydra.Option{
		hydra.WithDatasetFile(*dataPath),
		hydra.WithDevice(dev),
		hydra.WithWorkers(*workers),
		hydra.WithBatchWorkers(*batchW),
		hydra.WithLeafSize(*leafSize),
	}
	if *partial {
		opts = append(opts, hydra.WithPartialOnDeadline())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var engine *hydra.Engine
	switch {
	case *indexPath != "":
		engine, err = hydra.LoadIndex(ctx, *indexPath, opts...)
	case *method == "UCR-Suite":
		// The dataset is already configured via WithDatasetFile in opts.
		engine, err = hydra.Open("", opts...)
	default:
		engine, err = hydra.BuildIndex(ctx, *method, opts...)
	}
	if err != nil {
		fail("%v", err)
	}

	app := newServer(engine, *timeout, *inflight)
	srv := &http.Server{
		Addr:    *addr,
		Handler: app.handler(),
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Printf("hydra-serve: %s over %d×%d series on %s (simd=%s, timeout=%s)\n",
		engine.Method(), engine.Len(), engine.SeriesLen(), *addr, hydra.SIMDBackend(), *timeout)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fail("%v", err)
		}
	case <-ctx.Done():
		// Graceful shutdown: go not-ready first (/readyz flips to 503, new
		// queries are refused), then drain in-flight requests.
		fmt.Fprintln(os.Stderr, "hydra-serve: shutting down")
		app.startDrain()
		drain, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(drain); err != nil {
			fail("shutdown: %v", err)
		}
	}
}
