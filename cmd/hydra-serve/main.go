// Command hydra-serve exposes a similarity search engine as an HTTP/JSON
// service — the serving front end of the public hydra package, and a proof
// that the library API carries real traffic: the whole binary is built on
// the public surface only.
//
// Usage:
//
//	hydra-serve -data synth.hyd -addr :8080                 # UCR-Suite scan
//	hydra-serve -data synth.hyd -method DSTree -leaf 1000   # build an index, then serve
//	hydra-serve -data synth.hyd -index dstree.hydx          # serve a prebuilt snapshot
//	hydra-serve -data synth.hyd -shard 0/3 -addr :8081      # serve shard 0 of 3
//	hydra-serve -shards :8081,:8082,:8083 -addr :8080       # scatter-gather coordinator
//
// Endpoints:
//
//	POST /query   {"query":[...],"k":1}      one exact k-NN query
//	POST /batch   {"queries":[[...]],"k":1}  a batch; failed queries are isolated
//	POST /ingest  {"series":[[...]]}         durable append (-ingest-dir mode; 200 = acked)
//	GET  /healthz                            liveness + engine/topology facts
//	GET  /readyz                             admission state (503 while draining/degraded)
//	GET  /statusz                            engine + ingestion/WAL counters; per-shard fan-out counters on a coordinator
//
// Every request carries an X-Request-Id (the client's, or a generated one),
// echoed in the response header, JSON error bodies and the access log
// (-access-log=false silences the per-request line).
//
// Single-engine mode: every request runs under the -timeout per-request
// deadline (and the client-disconnect context). With -partial (the default)
// a query that overruns its deadline answers 200 with the best-so-far
// matches and "partial":true instead of 504; -partial=false restores the
// hard 504. -max-inflight bounds concurrently admitted query requests —
// excess requests are refused immediately with 503 + jittered Retry-After
// rather than queued into the latency tail. -shard i/n serves only the i-th
// of n equal slices of the collection, with match IDs remapped to
// full-collection positions — the building block of the sharded topology.
//
// Coordinator mode (-shards): the same /query and /batch contract served by
// fanning each request out to N shard servers and merging their top-k
// answers — bit-identical to a single whole-collection engine while every
// shard answers, degrading to merged best-so-far answers marked
// "partial":true (with a per-shard status block) when shards fail, and to
// 503 below the -min-shards quorum. Per-shard calls run under
// -shard-timeout with -shard-retries retries (exponential backoff +
// jitter), hedged duplicates after the shard's observed p99 (-hedge-after),
// and a circuit breaker (-breaker-failures, -breaker-cooldown) fed by a
// background /readyz prober (-probe-interval) that re-admits recovered
// shards.
//
// Durable ingestion (-ingest-dir, single-engine mode with an
// ingest-capable method): POST /ingest appends series through a write-ahead
// log (-wal-sync picks the fsync policy) — a 200 means the batch survives
// kill -9, and the next start replays the log before serving. /statusz
// reports the WAL lag and checkpoint counters.
//
// SIGINT/SIGTERM flip /readyz to 503, drain in-flight requests, then fold
// the WAL into a checkpoint before exit (graceful shutdown). Handler panics
// are recovered, logged, and answered as 500 — one request's failure never
// takes the process down.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hydra"
)

func main() {
	var (
		dataPath  = flag.String("data", "", "collection file (required except in -shards mode)")
		method    = flag.String("method", "UCR-Suite", "method to build and serve")
		indexPath = flag.String("index", "", "index snapshot to load instead of building")
		addr      = flag.String("addr", ":8080", "listen address")
		timeout   = flag.Duration("timeout", 2*time.Second, "per-request query deadline (0 = none)")
		leafSize  = flag.Int("leaf", 0, "leaf size (0 = paper default scaled to collection)")
		device    = flag.String("device", "hdd", "device profile for reported simulated times: hdd|ssd")
		workers   = flag.Int("workers", 0, "intra-query scan parallelism (0 = serial, -1 = GOMAXPROCS)")
		batchW    = flag.Int("batch-workers", 0, "concurrent queries per /batch request (0 = GOMAXPROCS)")
		inflight  = flag.Int("max-inflight", 0, "max concurrently admitted query requests; excess answers 503 (0 = unlimited)")
		partial   = flag.Bool("partial", true, "answer deadline-expired queries with best-so-far results (partial:true) instead of 504")
		accessLog = flag.Bool("access-log", true, "log one access line per request (method, path, status, duration, request ID)")
		shardSpec = flag.String("shard", "", "serve only shard i of n of the collection, as \"i/n\" (match IDs stay global)")
		ingestDir = flag.String("ingest-dir", "", "enable durable ingestion (POST /ingest): WAL + checkpoint directory")
		walSync   = flag.String("wal-sync", "", "WAL fsync policy: \"always\" (default), \"off\", or an interval like \"50ms\"")

		shards       = flag.String("shards", "", "comma-separated shard server addresses; serve as a scatter-gather coordinator instead of one engine")
		minShards    = flag.Int("min-shards", 1, "coordinator: minimum shards that must answer a query; fewer answers 503 instead of a partial merge")
		shardTimeout = flag.Duration("shard-timeout", 500*time.Millisecond, "coordinator: per-attempt deadline for one shard call")
		shardRetries = flag.Int("shard-retries", 2, "coordinator: extra attempts per shard call after the first")
		retryBackoff = flag.Duration("retry-backoff", 20*time.Millisecond, "coordinator: base retry backoff (doubles per retry, plus jitter)")
		hedgeAfter   = flag.Duration("hedge-after", 0, "coordinator: duplicate a slow shard call after this delay (0 = adaptive p99, negative = off)")
		breakerFails = flag.Int("breaker-failures", 3, "coordinator: consecutive failures that open a shard's circuit breaker")
		breakerCool  = flag.Duration("breaker-cooldown", 2*time.Second, "coordinator: open-breaker cooldown before a half-open trial (jittered)")
		probeEvery   = flag.Duration("probe-interval", 250*time.Millisecond, "coordinator: background /readyz probe period feeding the breakers")
	)
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "hydra-serve: "+format+"\n", args...)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *shards != "" {
		coord := newCoordinator(strings.Split(*shards, ","), coordConfig{
			timeout:       *timeout,
			shardTimeout:  *shardTimeout,
			retries:       *shardRetries,
			retryBackoff:  *retryBackoff,
			hedgeAfter:    *hedgeAfter,
			minShards:     *minShards,
			breakerFails:  *breakerFails,
			breakerCool:   *breakerCool,
			probeInterval: *probeEvery,
			accessLog:     *accessLog,
		})
		go coord.probeLoop(ctx)
		srv := &http.Server{Addr: *addr, Handler: coord.handler()}
		errCh := make(chan error, 1)
		go func() { errCh <- srv.ListenAndServe() }()
		fmt.Printf("hydra-serve: coordinator over %d shards on %s (quorum=%d, shard-timeout=%s)\n",
			len(coord.shards), *addr, *minShards, *shardTimeout)
		serveUntilDone(ctx, errCh, srv, coord.startDrain, fail)
		return
	}

	if *dataPath == "" {
		fail("-data is required")
	}
	dev, err := hydra.DeviceByName(*device)
	if err != nil {
		fail("%v", err)
	}
	opts := []hydra.Option{
		hydra.WithDatasetFile(*dataPath),
		hydra.WithDevice(dev),
		hydra.WithWorkers(*workers),
		hydra.WithBatchWorkers(*batchW),
		hydra.WithLeafSize(*leafSize),
	}
	if *partial {
		opts = append(opts, hydra.WithPartialOnDeadline())
	}
	if *ingestDir != "" {
		opts = append(opts, hydra.WithIngestDir(*ingestDir), hydra.WithWALSync(*walSync))
	}
	if *shardSpec != "" {
		index, count, err := parseShardSpec(*shardSpec)
		if err != nil {
			fail("%v", err)
		}
		opts = append(opts, hydra.WithShard(index, count))
	}

	var engine *hydra.Engine
	switch {
	case *indexPath != "":
		engine, err = hydra.LoadIndex(ctx, *indexPath, opts...)
	case *method == "UCR-Suite":
		// The dataset is already configured via WithDatasetFile in opts.
		engine, err = hydra.Open("", opts...)
	default:
		engine, err = hydra.BuildIndex(ctx, *method, opts...)
	}
	if err != nil {
		fail("%v", err)
	}

	app := newServer(engine, *timeout, *inflight)
	app.accessLog = *accessLog
	srv := &http.Server{
		Addr:    *addr,
		Handler: app.handler(),
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	placement := ""
	if idx, count, _, sharded := engine.ShardInfo(); sharded {
		placement = fmt.Sprintf(", shard %d/%d", idx, count)
	}
	ingestInfo := ""
	if st, ok := engine.IngestStats(); ok {
		ingestInfo = fmt.Sprintf(", ingest=%s sync=%s recovered=%d", *ingestDir, st.SyncPolicy, st.Recovered)
	}
	fmt.Printf("hydra-serve: %s over %d×%d series on %s (simd=%s, timeout=%s%s%s)\n",
		engine.Method(), engine.Len(), engine.SeriesLen(), *addr, hydra.SIMDBackend(), *timeout, placement, ingestInfo)
	serveUntilDone(ctx, errCh, srv, app.startDrain, fail)

	// Drain-time checkpoint: with the listener down and in-flight requests
	// finished, fold the WAL into a checkpoint so the next start replays
	// nothing. Best effort — a failure leaves the log, which recovery
	// handles; it must not turn a clean drain into a crash.
	if _, ok := engine.IngestStats(); ok {
		if err := engine.Checkpoint(context.Background()); err != nil {
			fmt.Fprintf(os.Stderr, "hydra-serve: drain checkpoint: %v\n", err)
		} else {
			fmt.Fprintln(os.Stderr, "hydra-serve: drain checkpoint written")
		}
		if err := engine.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "hydra-serve: closing ingest log: %v\n", err)
		}
	}
}

// serveUntilDone blocks until the listener fails or the signal context
// fires, then runs the graceful drain: not-ready first (/readyz flips to
// 503, new queries are refused), then http.Server.Shutdown over the
// in-flight requests.
func serveUntilDone(ctx context.Context, errCh <-chan error, srv *http.Server, startDrain func(), fail func(string, ...any)) {
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fail("%v", err)
		}
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "hydra-serve: shutting down")
		startDrain()
		drain, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(drain); err != nil {
			fail("shutdown: %v", err)
		}
	}
}

// parseShardSpec parses the -shard "i/n" placement.
func parseShardSpec(spec string) (index, count int, err error) {
	is, ns, ok := strings.Cut(spec, "/")
	if ok {
		var ierr, nerr error
		index, ierr = strconv.Atoi(strings.TrimSpace(is))
		count, nerr = strconv.Atoi(strings.TrimSpace(ns))
		if ierr == nil && nerr == nil && count > 0 && index >= 0 && index < count {
			return index, count, nil
		}
	}
	return 0, 0, fmt.Errorf("bad -shard %q: want \"i/n\" with 0 <= i < n", spec)
}
