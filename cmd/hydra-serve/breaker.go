package main

import (
	"math/rand"
	"sync"
	"time"
)

// breaker is the per-shard circuit breaker of the coordinator: after
// `threshold` consecutive failures the shard is declared unhealthy and
// requests to it are skipped outright (open state) instead of burning the
// fan-out's latency budget on a dead endpoint. After a jittered cooldown,
// exactly one request (or background probe) is let through as a half-open
// trial: success closes the breaker, failure re-opens it for another
// cooldown. The background /readyz prober feeds the same breaker, so a
// shard that recovers while unqueried still gets its breaker closed — the
// "recover to exact answers" half of the robustness contract.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	rng       *rand.Rand

	state       breakerState
	consecutive int       // consecutive failures while closed
	until       time.Time // earliest half-open trial while open
	opens       int64     // cumulative closed/half-open -> open transitions
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

func newBreaker(threshold int, cooldown time.Duration, seed int64) *breaker {
	if threshold < 1 {
		threshold = 1
	}
	return &breaker{threshold: threshold, cooldown: cooldown, rng: rand.New(rand.NewSource(seed))}
}

// allow reports whether a request to the shard may be sent now. While open
// it returns false until the cooldown elapses; then exactly one caller is
// granted the half-open trial (concurrent callers keep getting false until
// the trial resolves).
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Before(b.until) {
			return false
		}
		b.state = breakerHalfOpen
		return true
	default: // half-open: one trial at a time
		return false
	}
}

// success reports a successful exchange with the shard: the breaker closes
// and the failure streak resets, whatever state it was in.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.consecutive = 0
}

// failure reports a failed exchange. A half-open trial failure re-opens
// immediately; in closed state the breaker opens once the consecutive
// streak reaches the threshold. The open deadline carries up to 25% jitter
// so many coordinators do not re-probe a recovering shard in lockstep.
func (b *breaker) failure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		return
	case breakerHalfOpen:
		b.open(now)
	default:
		b.consecutive++
		if b.consecutive >= b.threshold {
			b.open(now)
		}
	}
}

// open transitions to the open state (callers hold mu).
func (b *breaker) open(now time.Time) {
	b.state = breakerOpen
	b.consecutive = 0
	b.opens++
	jitter := time.Duration(0)
	if b.cooldown > 0 {
		jitter = time.Duration(b.rng.Int63n(int64(b.cooldown)/4 + 1))
	}
	b.until = now.Add(b.cooldown + jitter)
}

// snapshot returns the state name and the cumulative open-transition count
// for status reporting.
func (b *breaker) snapshot() (state string, opens int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String(), b.opens
}

// ready reports whether the breaker would currently admit traffic (closed,
// or open with an elapsed cooldown) without mutating state — the /readyz
// aggregation view.
func (b *breaker) ready(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed, breakerHalfOpen:
		return b.state == breakerClosed
	default:
		return !now.Before(b.until)
	}
}
