package main

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"hydra"
)

// indexEngine builds an approx-capable index engine (the default testEngine
// is a scan, which has no approximate mode lattice).
func indexEngine(t *testing.T) (*hydra.Engine, *hydra.Dataset) {
	t.Helper()
	d, err := hydra.Generate("synthetic", 400, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	e, err := hydra.BuildIndex(context.Background(), "DSTree",
		hydra.WithData(d), hydra.WithLeafSize(64))
	if err != nil {
		t.Fatal(err)
	}
	return e, d
}

// TestServeApproxModes pins the per-request mode surface: mode fields in a
// /query body derive the answering engine, the reported stats carry the
// mode and the visit count, and an exact request against the same server
// still answers the exact engine's answer bit for bit.
func TestServeApproxModes(t *testing.T) {
	e, d := testEngine(t) // scan engine: exact still works, approx must 400
	h := newServer(e, time.Second, 0).handler()
	q := d.Series(11)

	ie, _ := indexEngine(t)
	ih := newServer(ie, time.Second, 0).handler()

	t.Run("exact is the default and round-trips", func(t *testing.T) {
		want, err := ie.Query(context.Background(), q, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, req := range []queryRequest{
			{Query: q, K: 3},
			{Query: q, K: 3, approxRequest: approxRequest{Mode: "exact"}},
		} {
			rec := postJSON(t, ih, "/query", req)
			if rec.Code != http.StatusOK {
				t.Fatalf("status %d: %s", rec.Code, rec.Body)
			}
			var resp queryResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Fatal(err)
			}
			for i, m := range resp.Matches {
				if m.ID != want[i].ID || m.Dist != want[i].Dist {
					t.Fatalf("match %d: got %+v want %+v", i, m, want[i])
				}
			}
			if resp.Stats.Mode == "ng" || resp.Stats.EarlyStop != "" {
				t.Fatalf("exact request reported approximate stats: %+v", resp.Stats)
			}
		}
	})

	t.Run("ng round-trips mode and visits", func(t *testing.T) {
		rec := postJSON(t, ih, "/query", queryRequest{
			Query: q, K: 3, approxRequest: approxRequest{Mode: "ng"},
		})
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
		var resp queryResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Stats.Mode != "ng" {
			t.Fatalf("stats mode %q, want ng", resp.Stats.Mode)
		}
		if len(resp.Matches) > 0 && resp.Stats.NodesVisited == 0 {
			t.Fatalf("non-empty ng answer reported no node visits: %+v", resp.Stats)
		}
	})

	t.Run("delta-eps echoes its parameters", func(t *testing.T) {
		rec := postJSON(t, ih, "/query", queryRequest{
			Query: q, K: 3,
			approxRequest: approxRequest{Mode: "delta-eps", Epsilon: 1, Delta: 0.95},
		})
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
		var resp queryResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Stats.Mode != "delta-eps" || resp.Stats.Epsilon != 1 || resp.Stats.Delta != 0.95 {
			t.Fatalf("delta-eps stats not echoed: %+v", resp.Stats)
		}
	})

	t.Run("batch carries the mode", func(t *testing.T) {
		queries := [][]float32{q, d.Series(7)}
		rec := postJSON(t, ih, "/batch", batchRequest{
			Queries:       queries,
			K:             2,
			approxRequest: approxRequest{Mode: "ng"},
		})
		if rec.Code != http.StatusOK {
			t.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
		var resp batchResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		// The batch answers must be the ng engine's answers — proof the mode
		// reached every entry, since ng and exact disagree on these queries
		// or at least never report more work than the full traversal.
		ng, err := ie.WithQueryOptions(hydra.WithApproxMode("ng"))
		if err != nil {
			t.Fatal(err)
		}
		for i, res := range resp.Results {
			if res.Error != "" {
				t.Fatalf("batch entry %d failed: %s", i, res.Error)
			}
			want, err := ng.Query(context.Background(), queries[i], 2)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Matches) != len(want) {
				t.Fatalf("entry %d: %d matches, want %d", i, len(res.Matches), len(want))
			}
			for j, m := range res.Matches {
				if m.ID != want[j].ID || m.Dist != want[j].Dist {
					t.Fatalf("entry %d match %d: got %+v want %+v", i, j, m, want[j])
				}
			}
		}
	})

	t.Run("bad mode is a 400", func(t *testing.T) {
		rec := postJSON(t, ih, "/query", queryRequest{
			Query: q, K: 1, approxRequest: approxRequest{Mode: "fuzzy"},
		})
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("status %d, want 400: %s", rec.Code, rec.Body)
		}
	})

	t.Run("approx on a scan method is a 400", func(t *testing.T) {
		rec := postJSON(t, h, "/query", queryRequest{
			Query: q, K: 1, approxRequest: approxRequest{Mode: "ng"},
		})
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("status %d, want 400: %s", rec.Code, rec.Body)
		}
		// And the server keeps serving exact queries afterwards.
		rec = postJSON(t, h, "/query", queryRequest{Query: q, K: 1})
		if rec.Code != http.StatusOK {
			t.Fatalf("scan server broken after approx rejection: %d", rec.Code)
		}
	})
}
