package main

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log"
	"math/big"
	"net/http"
	"strconv"
	"time"
)

// Request identity and access logging, shared by the single-engine server
// and the coordinator. Every request gets an ID: the client's X-Request-Id
// if it sent one (so a caller's trace survives the hop — the coordinator
// forwards its ID to every shard), a fresh random one otherwise. The ID is
// echoed in the X-Request-Id response header, carried in every JSON error
// body, and printed on the access log line, so one identifier follows a
// query from client to coordinator to shard to log.

// requestIDHeader is the wire header carrying the request ID in both
// directions.
const requestIDHeader = "X-Request-Id"

// ctxKeyRequestID keys the request ID in the request context.
type ctxKeyRequestID struct{}

// newRequestID returns a fresh 16-hex-digit random ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; serve with a zero ID
		// rather than refuse traffic.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// requestID extracts the request's ID from its context ("" outside the
// identified middleware).
func requestID(r *http.Request) string {
	id, _ := r.Context().Value(ctxKeyRequestID{}).(string)
	return id
}

// statusRecorder captures the status code a handler wrote so the access log
// can report it.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (s *statusRecorder) WriteHeader(code int) {
	s.status = code
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusRecorder) Write(b []byte) (int, error) {
	if s.status == 0 {
		s.status = http.StatusOK
	}
	return s.ResponseWriter.Write(b)
}

// identified is the outermost middleware: it attaches the request ID
// (accepted from the client or freshly generated), echoes it in the
// response header, and writes one access log line per request — method,
// path, status, duration, request ID.
func identified(next http.Handler) http.Handler { return identify(next, true) }

// identifiedQuiet is identified without the access log line (load-test
// topologies, where per-request logging would dominate the tail).
func identifiedQuiet(next http.Handler) http.Handler { return identify(next, false) }

func identify(next http.Handler, logAccess bool) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(requestIDHeader)
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set(requestIDHeader, id)
		r = r.WithContext(context.WithValue(r.Context(), ctxKeyRequestID{}, id))
		if !logAccess {
			next.ServeHTTP(w, r)
			return
		}
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(rec, r)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		log.Printf("hydra-serve: %s %s %d %s rid=%s", r.Method, r.URL.Path, rec.status,
			time.Since(start).Round(time.Microsecond), id)
	})
}

// retryAfterJitter returns a randomized Retry-After value in [1, spread]
// seconds. A fixed value would tell every refused client to come back at
// the same instant — synchronized retries that re-create the very overload
// that refused them; the jitter spreads the retry wave out.
func retryAfterJitter(spread int64) string {
	n, err := rand.Int(rand.Reader, big.NewInt(spread))
	if err != nil {
		return "1"
	}
	return strconv.FormatInt(1+n.Int64(), 10)
}
