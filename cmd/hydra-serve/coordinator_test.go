package main

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hydra"
	"hydra/internal/faultpoint"
)

// testShard is one shard server of a test fleet: its engine (for computing
// expectations), its offset into the full collection, an httptest listener,
// and a switch that takes it down (everything answers 503, /readyz
// included, like a draining or dead instance).
type testShard struct {
	engine  *hydra.Engine
	offset  int
	srv     *httptest.Server
	down    atomic.Bool
	lastRID atomic.Value // last X-Request-Id seen (string)
}

// newTestFleet builds `count` shard servers over equal slices of d.
func newTestFleet(t *testing.T, d *hydra.Dataset, method string, count int) []*testShard {
	t.Helper()
	fleet := make([]*testShard, count)
	for i := 0; i < count; i++ {
		opts := []hydra.Option{hydra.WithData(d), hydra.WithShard(i, count)}
		var e *hydra.Engine
		var err error
		if method == "UCR-Suite" {
			e, err = hydra.Open("", opts...)
		} else {
			e, err = hydra.BuildIndex(context.Background(), method, append(opts, hydra.WithLeafSize(16))...)
		}
		if err != nil {
			t.Fatal(err)
		}
		_, _, offset, _ := e.ShardInfo()
		ts := &testShard{engine: e, offset: offset}
		h := newServer(e, 5*time.Second, 0).handler()
		ts.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			ts.lastRID.Store(r.Header.Get(requestIDHeader))
			if ts.down.Load() {
				http.Error(w, "down", http.StatusServiceUnavailable)
				return
			}
			h.ServeHTTP(w, r)
		}))
		t.Cleanup(ts.srv.Close)
		fleet[i] = ts
	}
	return fleet
}

// testCoordCfg is a fast, deterministic fan-out policy for tests: hedging
// off, millisecond backoff, short breaker cooldown.
func testCoordCfg() coordConfig {
	return coordConfig{
		timeout:       10 * time.Second,
		shardTimeout:  2 * time.Second,
		retries:       2,
		retryBackoff:  time.Millisecond,
		hedgeAfter:    -1,
		minShards:     1,
		breakerFails:  3,
		breakerCool:   50 * time.Millisecond,
		probeInterval: 5 * time.Millisecond,
	}
}

func fleetCoordinator(fleet []*testShard, cfg coordConfig) *coordinator {
	addrs := make([]string, len(fleet))
	for i, ts := range fleet {
		addrs[i] = ts.srv.URL
	}
	return newCoordinator(addrs, cfg)
}

func postCoordQuery(t *testing.T, h http.Handler, q []float32, k int) (*httptest.ResponseRecorder, queryResponse) {
	t.Helper()
	rec := postJSON(t, h, "/query", queryRequest{Query: q, K: k})
	var resp queryResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
	}
	return rec, resp
}

func assertBitIdentical(t *testing.T, got []matchJSON, want []hydra.Match, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d matches, want %d", label, len(got), len(want))
	}
	seen := map[int]bool{}
	for i, m := range got {
		if seen[m.ID] {
			t.Fatalf("%s: duplicate ID %d in merged results", label, m.ID)
		}
		seen[m.ID] = true
		if m.ID != want[i].ID || math.Float64bits(m.Dist) != math.Float64bits(want[i].Dist) {
			t.Fatalf("%s rank %d: got (%d, %x) want (%d, %x)", label, i,
				m.ID, math.Float64bits(m.Dist), want[i].ID, math.Float64bits(want[i].Dist))
		}
	}
}

// TestCoordinatorBitIdentical is the tentpole conformance proof over real
// HTTP: a coordinator over 3 healthy shard servers answers /query and
// /batch bit-identically to one whole-collection engine, for a scan method
// and both index methods.
func TestCoordinatorBitIdentical(t *testing.T) {
	d, err := hydra.Generate("synthetic", 240, 64, 7)
	if err != nil {
		t.Fatal(err)
	}
	queries := hydra.ControlledWorkload(d, 4, 0.3, 11)

	for _, method := range []string{"UCR-Suite", "DSTree", "VA+file"} {
		var whole *hydra.Engine
		if method == "UCR-Suite" {
			whole, err = hydra.Open("", hydra.WithData(d))
		} else {
			whole, err = hydra.BuildIndex(context.Background(), method, hydra.WithData(d), hydra.WithLeafSize(16))
		}
		if err != nil {
			t.Fatal(err)
		}
		fleet := newTestFleet(t, d, method, 3)
		h := fleetCoordinator(fleet, testCoordCfg()).handler()

		const k = 5
		var batch [][]float32
		for qi := 0; qi < queries.Len(); qi++ {
			q := queries.Query(qi)
			batch = append(batch, q)
			want, err := whole.Query(context.Background(), q, k)
			if err != nil {
				t.Fatal(err)
			}
			rec, resp := postCoordQuery(t, h, q, k)
			if rec.Code != http.StatusOK {
				t.Fatalf("%s q%d: status %d: %s", method, qi, rec.Code, rec.Body)
			}
			if resp.Partial {
				t.Fatalf("%s q%d: healthy fleet answered partial", method, qi)
			}
			assertBitIdentical(t, resp.Matches, want, method+" /query")
			if len(resp.Shards) != 3 {
				t.Fatalf("%s q%d: %d shard statuses, want 3", method, qi, len(resp.Shards))
			}
			for _, st := range resp.Shards {
				if st.State != "ok" || st.Breaker != "closed" {
					t.Fatalf("%s q%d: unexpected shard status %+v", method, qi, st)
				}
			}
			if resp.Stats.DistCalcs == 0 {
				t.Fatalf("%s q%d: aggregated stats not populated: %+v", method, qi, resp.Stats)
			}
		}

		rec := postJSON(t, h, "/batch", batchRequest{Queries: batch, K: k})
		if rec.Code != http.StatusOK {
			t.Fatalf("%s /batch: status %d: %s", method, rec.Code, rec.Body)
		}
		var bresp batchResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &bresp); err != nil {
			t.Fatal(err)
		}
		if bresp.Partial || len(bresp.Results) != len(batch) {
			t.Fatalf("%s /batch: partial=%v results=%d", method, bresp.Partial, len(bresp.Results))
		}
		for qi, res := range bresp.Results {
			if res.Error != "" {
				t.Fatalf("%s /batch q%d: %s", method, qi, res.Error)
			}
			want, err := whole.Query(context.Background(), batch[qi], k)
			if err != nil {
				t.Fatal(err)
			}
			assertBitIdentical(t, res.Matches, want, method+" /batch")
		}
	}
}

// expectedWithout computes the exact merge over the live shards only — the
// best-so-far answer a degraded coordinator must return.
func expectedWithout(t *testing.T, fleet []*testShard, deadIdx int, q []float32, k int) []hydra.Match {
	t.Helper()
	g := hydra.NewGather(k)
	for i, ts := range fleet {
		if i == deadIdx {
			continue
		}
		local, err := ts.engine.Query(context.Background(), q, k)
		if err != nil {
			t.Fatal(err)
		}
		global := make([]hydra.Match, len(local))
		for j, m := range local {
			global[j] = hydra.Match{ID: m.ID + ts.offset, Dist: m.Dist}
		}
		g.Fold(ts.srv.URL, global)
	}
	return g.Results()
}

// TestCoordinatorPartialAndRecovery is the degradation ladder end to end: a
// dead shard turns answers into exact-over-the-survivors with
// partial:true and a status block naming the failure; the breaker opens and
// subsequent queries skip the shard; once the shard is back, one probe
// cycle closes the breaker and answers are whole-collection exact again.
func TestCoordinatorPartialAndRecovery(t *testing.T) {
	d, err := hydra.Generate("synthetic", 240, 64, 9)
	if err != nil {
		t.Fatal(err)
	}
	whole, err := hydra.Open("", hydra.WithData(d))
	if err != nil {
		t.Fatal(err)
	}
	fleet := newTestFleet(t, d, "UCR-Suite", 3)
	coord := fleetCoordinator(fleet, testCoordCfg())
	h := coord.handler()
	q := d.Series(17)
	const k = 4

	want, err := whole.Query(context.Background(), q, k)
	if err != nil {
		t.Fatal(err)
	}
	rec, resp := postCoordQuery(t, h, q, k)
	if rec.Code != http.StatusOK || resp.Partial {
		t.Fatalf("healthy baseline: status %d partial=%v", rec.Code, resp.Partial)
	}
	assertBitIdentical(t, resp.Matches, want, "healthy baseline")

	// Kill shard 1. Its 503s are retried, exhausted, and counted by the
	// breaker (3 attempts >= breakerFails, so one query opens it).
	fleet[1].down.Store(true)
	rec, resp = postCoordQuery(t, h, q, k)
	if rec.Code != http.StatusOK {
		t.Fatalf("degraded query: status %d: %s", rec.Code, rec.Body)
	}
	if !resp.Partial {
		t.Fatal("degraded query not marked partial")
	}
	if st := resp.Shards[1]; st.State != "failed" || st.Error == "" {
		t.Fatalf("dead shard status: %+v", st)
	}
	assertBitIdentical(t, resp.Matches, expectedWithout(t, fleet, 1, q, k), "degraded merge")

	// The breaker is open now: the next query must skip the shard outright
	// (state "skipped", no attempts burned) and still answer partial.
	rec, resp = postCoordQuery(t, h, q, k)
	if rec.Code != http.StatusOK || !resp.Partial {
		t.Fatalf("breaker-open query: status %d partial=%v", rec.Code, resp.Partial)
	}
	if st := resp.Shards[1]; st.State != "skipped" {
		t.Fatalf("breaker-open shard status: %+v", st)
	}
	assertBitIdentical(t, resp.Matches, expectedWithout(t, fleet, 1, q, k), "breaker-open merge")

	// Shard comes back; one probe cycle closes the breaker and the next
	// query is whole-collection exact again.
	fleet[1].down.Store(false)
	coord.probeOnce(context.Background())
	rec, resp = postCoordQuery(t, h, q, k)
	if rec.Code != http.StatusOK || resp.Partial {
		t.Fatalf("recovered query: status %d partial=%v: %s", rec.Code, resp.Partial, rec.Body)
	}
	assertBitIdentical(t, resp.Matches, want, "recovered")
	for i, st := range resp.Shards {
		if st.State != "ok" {
			t.Fatalf("recovered shard %d status: %+v", i, st)
		}
	}
}

// TestCoordinatorQuorum pins -min-shards: with a full quorum required, one
// dead shard fails the query with 503, a Retry-After header, and the
// per-shard status block in the error body.
func TestCoordinatorQuorum(t *testing.T) {
	d, err := hydra.Generate("synthetic", 120, 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	fleet := newTestFleet(t, d, "UCR-Suite", 3)
	cfg := testCoordCfg()
	cfg.minShards = 3
	cfg.retries = 0
	h := fleetCoordinator(fleet, cfg).handler()
	fleet[2].down.Store(true)

	rec := postJSON(t, h, "/query", queryRequest{Query: d.Series(0), K: 2})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("below quorum: status %d, want 503: %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("quorum refusal missing Retry-After")
	}
	var er errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(er.Error, "quorum") || len(er.Shards) != 3 || er.RequestID == "" {
		t.Fatalf("quorum error body: %+v", er)
	}
}

// TestCoordinatorFaultDrills drives the rpc/* faultpoints through the
// coordinator's client path: transient errors are absorbed by retries,
// blackholes are bounded by the per-attempt deadline and never hang, and a
// flapping shard is ridden out by the retry loop — with exact answers and
// full recovery after disarm in every drill.
func TestCoordinatorFaultDrills(t *testing.T) {
	d, err := hydra.Generate("synthetic", 120, 32, 5)
	if err != nil {
		t.Fatal(err)
	}
	whole, err := hydra.Open("", hydra.WithData(d))
	if err != nil {
		t.Fatal(err)
	}
	q := d.Series(31)
	const k = 3
	want, err := whole.Query(context.Background(), q, k)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("rpc/error retried", func(t *testing.T) {
		defer faultpoint.Reset()
		fleet := newTestFleet(t, d, "UCR-Suite", 3)
		h := fleetCoordinator(fleet, testCoordCfg()).handler()
		faultpoint.ArmN(faultpoint.RPCError, 1)
		rec, resp := postCoordQuery(t, h, q, k)
		if rec.Code != http.StatusOK || resp.Partial {
			t.Fatalf("status %d partial=%v: %s", rec.Code, resp.Partial, rec.Body)
		}
		assertBitIdentical(t, resp.Matches, want, "rpc/error")
		var retries int64
		for _, st := range resp.Shards {
			retries += st.Retries
		}
		if retries != 1 {
			t.Fatalf("one injected error should cost exactly one retry, got %d", retries)
		}
	})

	t.Run("rpc/drop bounded", func(t *testing.T) {
		defer faultpoint.Reset()
		fleet := newTestFleet(t, d, "UCR-Suite", 3)
		cfg := testCoordCfg()
		cfg.shardTimeout = 30 * time.Millisecond
		cfg.retries = 1
		coord := fleetCoordinator(fleet, cfg)
		h := coord.handler()

		faultpoint.Arm(faultpoint.RPCDrop)
		start := time.Now()
		rec, _ := postCoordQuery(t, h, q, k)
		elapsed := time.Since(start)
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("total blackhole: status %d, want 503 quorum failure: %s", rec.Code, rec.Body)
		}
		if elapsed > 2*time.Second {
			t.Fatalf("blackholed query took %s: the per-attempt deadline is not bounding drops", elapsed)
		}

		// Disarm, let the prober re-admit whatever breakers opened, and the
		// fleet is exact again.
		faultpoint.Reset()
		coord.probeOnce(context.Background())
		rec, resp := postCoordQuery(t, h, q, k)
		if rec.Code != http.StatusOK || resp.Partial {
			t.Fatalf("post-drill: status %d partial=%v: %s", rec.Code, resp.Partial, rec.Body)
		}
		assertBitIdentical(t, resp.Matches, want, "post-drop recovery")
	})

	t.Run("rpc/flap ridden out", func(t *testing.T) {
		defer faultpoint.Reset()
		// One shard covering the whole collection keeps the global hit
		// sequence deterministic: attempt 1 fires hit 1 (odd, fails),
		// the retry fires hit 2 (even, passes).
		fleet := newTestFleet(t, d, "UCR-Suite", 1)
		h := fleetCoordinator(fleet, testCoordCfg()).handler()
		faultpoint.Arm(faultpoint.RPCFlap)
		rec, resp := postCoordQuery(t, h, q, k)
		if rec.Code != http.StatusOK || resp.Partial {
			t.Fatalf("status %d partial=%v: %s", rec.Code, resp.Partial, rec.Body)
		}
		assertBitIdentical(t, resp.Matches, want, "rpc/flap")
		if resp.Shards[0].Retries != 1 {
			t.Fatalf("flap should cost exactly one retry, got %+v", resp.Shards[0])
		}
	})
}

// TestCoordinatorHedging pins the hedge path: with every attempt slowed
// past the hedge delay, each shard call launches a duplicate — and the
// answer stays exact with no double-counted matches, because only one
// response per shard is ever folded (first success wins, Gather folds once
// per source).
func TestCoordinatorHedging(t *testing.T) {
	defer faultpoint.Reset()
	d, err := hydra.Generate("synthetic", 120, 32, 6)
	if err != nil {
		t.Fatal(err)
	}
	whole, err := hydra.Open("", hydra.WithData(d))
	if err != nil {
		t.Fatal(err)
	}
	q := d.Series(7)
	const k = 3
	want, err := whole.Query(context.Background(), q, k)
	if err != nil {
		t.Fatal(err)
	}

	fleet := newTestFleet(t, d, "UCR-Suite", 3)
	cfg := testCoordCfg()
	cfg.hedgeAfter = 5 * time.Millisecond
	cfg.retries = 0
	coord := fleetCoordinator(fleet, cfg)
	h := coord.handler()

	faultpoint.ArmDelay(faultpoint.RPCSlow, 40*time.Millisecond)
	rec, resp := postCoordQuery(t, h, q, k)
	if rec.Code != http.StatusOK || resp.Partial {
		t.Fatalf("status %d partial=%v: %s", rec.Code, resp.Partial, rec.Body)
	}
	assertBitIdentical(t, resp.Matches, want, "hedged")
	for i, st := range resp.Shards {
		if !st.Hedged {
			t.Fatalf("shard %d: 40ms slowdown vs 5ms hedge delay did not hedge: %+v", i, st)
		}
	}

	// The counters surface on /statusz.
	req := httptest.NewRequest(http.MethodGet, "/statusz", nil)
	srec := httptest.NewRecorder()
	h.ServeHTTP(srec, req)
	if srec.Code != http.StatusOK {
		t.Fatalf("/statusz: status %d", srec.Code)
	}
	var stat statuszResponse
	if err := json.Unmarshal(srec.Body.Bytes(), &stat); err != nil {
		t.Fatal(err)
	}
	if stat.Mode != "coordinator" || len(stat.Shards) != 3 {
		t.Fatalf("statusz shape: %+v", stat)
	}
	var hedges int64
	for _, s := range stat.Shards {
		hedges += s.Hedges
	}
	if hedges < 3 {
		t.Fatalf("statusz hedges = %d, want >= 3", hedges)
	}
}

// TestCoordinatorHealthAndDrain covers the topology endpoints and the
// graceful-drain admission contract.
func TestCoordinatorHealthAndDrain(t *testing.T) {
	d, err := hydra.Generate("synthetic", 60, 32, 8)
	if err != nil {
		t.Fatal(err)
	}
	fleet := newTestFleet(t, d, "UCR-Suite", 2)
	coord := fleetCoordinator(fleet, testCoordCfg())
	h := coord.handler()

	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var hz coordHealthzResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &hz); err != nil {
		t.Fatal(err)
	}
	if rec.Code != http.StatusOK || hz.Mode != "coordinator" || hz.Shards != 2 || hz.Available != 2 {
		t.Fatalf("healthz: %d %+v", rec.Code, hz)
	}

	req = httptest.NewRequest(http.MethodGet, "/readyz", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("readyz before drain: %d", rec.Code)
	}

	coord.startDrain()
	req = httptest.NewRequest(http.MethodGet, "/readyz", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d", rec.Code)
	}
	qrec := postJSON(t, h, "/query", queryRequest{Query: d.Series(0), K: 1})
	if qrec.Code != http.StatusServiceUnavailable || qrec.Header().Get("Retry-After") == "" {
		t.Fatalf("query while draining: %d, Retry-After %q", qrec.Code, qrec.Header().Get("Retry-After"))
	}
}

// TestRequestIDFlow pins the identity satellite: a client-supplied
// X-Request-Id survives coordinator -> shard -> error body; an absent one
// is generated as 16 hex digits.
func TestRequestIDFlow(t *testing.T) {
	d, err := hydra.Generate("synthetic", 60, 32, 2)
	if err != nil {
		t.Fatal(err)
	}
	fleet := newTestFleet(t, d, "UCR-Suite", 2)
	h := fleetCoordinator(fleet, testCoordCfg()).handler()

	blob, _ := json.Marshal(queryRequest{Query: d.Series(3), K: 1})
	req := httptest.NewRequest(http.MethodPost, "/query", strings.NewReader(string(blob)))
	req.Header.Set(requestIDHeader, "trace-abc-123")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get(requestIDHeader); got != "trace-abc-123" {
		t.Fatalf("response echoes %q, want the client's ID", got)
	}
	for i, ts := range fleet {
		if rid, _ := ts.lastRID.Load().(string); rid != "trace-abc-123" {
			t.Fatalf("shard %d saw request ID %q, want the coordinator-forwarded one", i, rid)
		}
	}

	// Errors carry the ID in the body.
	req = httptest.NewRequest(http.MethodPost, "/query", strings.NewReader("{not json"))
	req.Header.Set(requestIDHeader, "trace-err-9")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var er errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil {
		t.Fatal(err)
	}
	if rec.Code != http.StatusBadRequest || er.RequestID != "trace-err-9" {
		t.Fatalf("error body: %d %+v", rec.Code, er)
	}

	// Absent ID: one is generated.
	req = httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get(requestIDHeader); !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(got) {
		t.Fatalf("generated request ID %q, want 16 hex digits", got)
	}
}

// TestRetryAfterJitter pins the jittered Retry-After range: every draw
// lands in [1, spread] and the draws are not all identical.
func TestRetryAfterJitter(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		v := retryAfterJitter(3)
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > 3 {
			t.Fatalf("draw %q outside [1,3]", v)
		}
		seen[v] = true
	}
	if len(seen) < 2 {
		t.Fatal("200 draws produced a single value: no jitter")
	}
}

// TestBreakerLifecycle pins the state machine directly: threshold opens,
// cooldown admits one half-open trial, trial failure re-opens, trial
// success closes.
func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(3, 100*time.Millisecond, 1)
	for i := 0; i < 2; i++ {
		b.failure(now)
		if !b.allow(now) {
			t.Fatalf("breaker open after %d/3 failures", i+1)
		}
	}
	b.failure(now)
	if b.allow(now) {
		t.Fatal("breaker still admitting after threshold failures")
	}
	if state, opens := b.snapshot(); state != "open" || opens != 1 {
		t.Fatalf("snapshot after open: %s/%d", state, opens)
	}

	// Cooldown (plus up to 25% jitter) elapses: exactly one trial admitted.
	later := now.Add(200 * time.Millisecond)
	if !b.allow(later) {
		t.Fatal("no half-open trial after cooldown")
	}
	if b.allow(later) {
		t.Fatal("second concurrent half-open trial admitted")
	}
	b.failure(later)
	if b.allow(later) {
		t.Fatal("breaker closed by a failed trial")
	}

	later = later.Add(200 * time.Millisecond)
	if !b.allow(later) {
		t.Fatal("no trial after second cooldown")
	}
	b.success()
	if !b.allow(later) || !b.ready(later) {
		t.Fatal("successful trial did not close the breaker")
	}
}
