package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hydra"
)

func testEngine(t *testing.T) (*hydra.Engine, *hydra.Dataset) {
	t.Helper()
	d, err := hydra.Generate("synthetic", 400, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	e, err := hydra.Open("", hydra.WithData(d))
	if err != nil {
		t.Fatal(err)
	}
	return e, d
}

func postJSON(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	blob, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(blob))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestServeQueryMatchesEngine pins the proof the CI smoke also checks over
// real processes: the HTTP answer is the engine's answer, bit for bit.
func TestServeQueryMatchesEngine(t *testing.T) {
	e, d := testEngine(t)
	h := newServer(e, time.Second, 0).handler()
	q := d.Series(11)

	want, err := e.Query(context.Background(), q, 3)
	if err != nil {
		t.Fatal(err)
	}
	rec := postJSON(t, h, "/query", queryRequest{Query: q, K: 3})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp queryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Matches) != len(want) {
		t.Fatalf("got %d matches, want %d", len(resp.Matches), len(want))
	}
	for i, m := range resp.Matches {
		if m.ID != want[i].ID || m.Dist != want[i].Dist {
			t.Fatalf("match %d: got %+v want %+v", i, m, want[i])
		}
	}
	if resp.Stats.DistCalcs == 0 || resp.Stats.DeviceModel == "" {
		t.Fatalf("stats not populated: %+v", resp.Stats)
	}
}

// TestServeBatchIsolatesFailures pins the /batch contract: a malformed
// query inside a batch yields a per-entry error while its siblings answer.
func TestServeBatchIsolatesFailures(t *testing.T) {
	e, d := testEngine(t)
	h := newServer(e, time.Second, 0).handler()
	good := d.Series(5)
	bad := []float32{1, 2, 3} // wrong length

	rec := postJSON(t, h, "/batch", batchRequest{Queries: [][]float32{good, bad, good}, K: 1})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var resp batchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(resp.Results))
	}
	if resp.Results[0].Error != "" || len(resp.Results[0].Matches) != 1 {
		t.Fatalf("query 0 should succeed: %+v", resp.Results[0])
	}
	if resp.Results[1].Error == "" {
		t.Fatalf("query 1 should fail: %+v", resp.Results[1])
	}
	if !strings.Contains(resp.Results[1].Error, "length") {
		t.Fatalf("query 1 should carry its real cause, got %q", resp.Results[1].Error)
	}
	if resp.Results[2].Error != "" || len(resp.Results[2].Matches) != 1 {
		t.Fatalf("query 2 should succeed: %+v", resp.Results[2])
	}
	if resp.Results[0].Matches[0].ID != 5 {
		t.Fatalf("self-query should find series 5: %+v", resp.Results[0].Matches)
	}
}

// TestServeDeadline pins the per-request deadline path: an already-expired
// deadline answers 504, and the engine keeps serving afterwards.
func TestServeDeadline(t *testing.T) {
	e, d := testEngine(t)
	h := newServer(e, time.Nanosecond, 0).handler()
	q := d.Series(0)

	rec := postJSON(t, h, "/query", queryRequest{Query: q, K: 1})
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", rec.Code, rec.Body)
	}

	// The engine must stay reusable: a fresh server without deadline works.
	rec = postJSON(t, newServer(e, 0, 0).handler(), "/query", queryRequest{Query: q, K: 1})
	if rec.Code != http.StatusOK {
		t.Fatalf("engine not reusable after deadline: status %d", rec.Code)
	}
}

// TestServeHealthz pins the health endpoint's shape.
func TestServeHealthz(t *testing.T) {
	e, _ := testEngine(t)
	h := newServer(e, time.Second, 0).handler()
	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var resp healthzResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != "ok" || resp.Method != "UCR-Suite" || resp.Series != 400 || resp.SeriesLen != 64 {
		t.Fatalf("unexpected healthz: %+v", resp)
	}
}

// TestServeRejectsBadRequests covers the 4xx paths.
func TestServeRejectsBadRequests(t *testing.T) {
	e, _ := testEngine(t)
	h := newServer(e, time.Second, 0).handler()

	req := httptest.NewRequest(http.MethodGet, "/query", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query: status %d, want 405", rec.Code)
	}

	req = httptest.NewRequest(http.MethodPost, "/query", bytes.NewReader([]byte("{not json")))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad JSON: status %d, want 400", rec.Code)
	}

	rec = postJSON(t, h, "/query", queryRequest{Query: []float32{1, 2}, K: 1})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("wrong length: status %d, want 400: %s", rec.Code, rec.Body)
	}
}

// TestServeConcurrentQueries hammers one handler from many goroutines —
// the shared-engine concurrency contract under the race detector.
func TestServeConcurrentQueries(t *testing.T) {
	e, d := testEngine(t)
	h := newServer(e, time.Second, 0).handler()
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 5; i++ {
				rec := postJSON(t, h, "/query", queryRequest{Query: d.Series((g*5 + i) % d.Len()), K: 2})
				if rec.Code != http.StatusOK {
					done <- fmt.Errorf("status %d", rec.Code)
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
