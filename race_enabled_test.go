//go:build race

package hydra

// raceEnabled reports that this binary was built with the race detector,
// whose instrumentation (and sync.Pool's deliberate randomized misses under
// it) perturbs allocation counts. See TestQueryAllocBudget.
const raceEnabled = true
