package hydra

import (
	"context"
	"fmt"
	"testing"

	"hydra/internal/core"
	"hydra/internal/dataset"
	_ "hydra/internal/methods"
)

// queryAllocBudget is the steady-state heap-allocation budget per exact KNN
// query on the pooled-scratch paths: one allocation for the returned matches
// plus one of slack (pool churn across GC cycles). CI runs this test as a
// dedicated gate; a regression that re-introduces per-query buffer or heap
// allocations fails it immediately.
const queryAllocBudget = 2.0

// TestQueryAllocBudget pins the steady-state allocations per query of every
// method whose full KNN path runs on pooled scratch. Methods whose query
// setup still allocates (SFA and VA+file pay DFT feature extraction) are
// tracked by BenchmarkQueryAllocs instead of gated here.
func TestQueryAllocBudget(t *testing.T) {
	if raceEnabled {
		// The race detector's instrumentation allocates, and sync.Pool
		// deliberately fakes misses under it; the budget only holds for
		// production builds. CI runs this gate in its own non-race step.
		t.Skip("allocation budget is measured without the race detector")
	}
	ds := dataset.RandomWalk(2000, 256, 42)
	queries := dataset.SynthRand(8, 256, 7).Queries
	for _, name := range []string{"UCR-Suite", "ADS+", "iSAX2+", "DSTree"} {
		t.Run(name, func(t *testing.T) {
			m, err := core.New(name, core.Options{LeafSize: 64})
			if err != nil {
				t.Fatal(err)
			}
			coll := core.NewCollection(ds)
			if err := m.Build(coll); err != nil {
				t.Fatal(err)
			}
			// Warm up: grow scratch buffers, materialize adaptive leaves
			// (ADS+), populate the pool.
			for _, q := range queries {
				if _, _, err := m.KNN(context.Background(), q, 1); err != nil {
					t.Fatal(err)
				}
			}
			i := 0
			avg := testing.AllocsPerRun(100, func() {
				q := queries[i%len(queries)]
				i++
				if _, _, err := m.KNN(context.Background(), q, 1); err != nil {
					t.Fatal(err)
				}
			})
			if avg > queryAllocBudget {
				t.Errorf("%s: %.2f allocs per steady-state query, budget %.0f", name, avg, queryAllocBudget)
			}
		})
	}
}

// TestQueryAllocBudgetFacade extends the allocation gate to the public API
// path: Engine.Query must add nothing on top of the method's pooled query —
// the scratch pooling survives the facade (context poll, instrumentation
// and the []float32 → series.Series conversion are all allocation-free).
func TestQueryAllocBudgetFacade(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation budget is measured without the race detector")
	}
	ds := dataset.RandomWalk(2000, 256, 42)
	pub := &Dataset{d: ds}
	queries := dataset.SynthRand(8, 256, 7).Queries
	ctx := context.Background()
	for _, name := range []string{"UCR-Suite", "ADS+", "iSAX2+", "DSTree"} {
		t.Run(name, func(t *testing.T) {
			e, err := BuildIndex(ctx, name, WithData(pub), WithLeafSize(64))
			if err != nil {
				t.Fatal(err)
			}
			for _, q := range queries {
				if _, err := e.Query(ctx, q, 1); err != nil {
					t.Fatal(err)
				}
			}
			i := 0
			avg := testing.AllocsPerRun(100, func() {
				q := queries[i%len(queries)]
				i++
				if _, err := e.Query(ctx, q, 1); err != nil {
					t.Fatal(err)
				}
			})
			if avg > queryAllocBudget {
				t.Errorf("%s via Engine.Query: %.2f allocs per steady-state query, budget %.0f", name, avg, queryAllocBudget)
			}
		})
	}
}

// TestParallelScanStillExact guards the pooled parallel path: answers must
// stay bit-identical to the serial scan for any worker count (the scratch
// pool and mutex merge must not perturb the deterministic selection).
func TestParallelScanStillExact(t *testing.T) {
	ds := dataset.RandomWalk(1500, 128, 9)
	coll := core.NewCollection(ds)
	queries := dataset.SynthRand(6, 128, 11).Queries
	for _, q := range queries {
		// The oracle is the one-worker pooled scan: reordered early
		// abandoning accumulates in query order, so brute force (natural
		// order) differs in the last ulp — the bit-identity contract is
		// serial-scan vs parallel-scan.
		want, _, err := core.ParallelScanKNN(context.Background(), coll, q, 3, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 7} {
			got, _, err := core.ParallelScanKNN(context.Background(), coll, q, 3, workers)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("workers=%d: %v want %v", workers, got, want)
			}
		}
	}
}
