package hydra

import (
	"fmt"

	"hydra/internal/core"
	"hydra/internal/dataset"
)

// ShardRange returns the [lo, hi) row range of the index-th of count
// contiguous partitions of an n-series collection — the same split
// convention the parallel scan uses for its per-worker shards, so a
// collection sharded across processes and one scanned by workers partition
// identically. index must be in [0, count).
func ShardRange(n, index, count int) (lo, hi int) {
	return index * n / count, (index + 1) * n / count
}

// Shard returns the index-th of count contiguous partitions of the dataset
// as its own Dataset, plus the offset of its first series in the full
// collection. The view aliases the parent's backing arena — sharding a
// collection across engines (or serving processes) costs no copies.
//
// Engines opened over a shard answer with shard-local IDs in [0, shard
// length); adding the returned offset maps them back to positions in the
// full collection. The hydra-serve -shard flag and its coordinator mode
// wire exactly this.
func (d *Dataset) Shard(index, count int) (*Dataset, int, error) {
	if count < 1 || index < 0 || index >= count {
		return nil, 0, fmt.Errorf("hydra: shard %d/%d out of range", index, count)
	}
	n := d.Len()
	lo, hi := ShardRange(n, index, count)
	if lo >= hi {
		return nil, 0, fmt.Errorf("hydra: shard %d/%d of a %d-series collection is empty", index, count, n)
	}
	name := fmt.Sprintf("%s[%d/%d]", d.d.Name, index, count)
	l := d.SeriesLen()
	if flat := d.d.Flat(); flat != nil {
		return &Dataset{d: dataset.FromFlat(name, flat[lo*l:hi*l:hi*l], hi-lo, l)}, lo, nil
	}
	// Hand-assembled datasets have no arena; the shard shares the Series
	// views themselves.
	return &Dataset{d: &dataset.Dataset{Name: name, Series: d.d.Series[lo:hi:hi]}}, lo, nil
}

// Gather merges per-shard k-NN answers into one global top-k — the
// coordinator side of scatter-gather serving, built on the same
// deterministic (distance, then ascending ID) merge as the parallel scan.
// Three properties make it safe under degraded fan-outs:
//
//   - every Fold names its source shard and only the first fold per source
//     applies, so a hedged request that returns twice contributes once;
//   - duplicate series IDs across overlapping shards are deduplicated, so
//     replicated rows never appear twice in an answer;
//   - distances fold and return in true (square-rooted) form bit-exactly,
//     so a merge over healthy disjoint shards equals the single-engine
//     answer bit for bit.
//
// A Gather is safe for concurrent use; shard responses fold as they arrive
// in any order.
type Gather struct{ g *core.GatherSet }

// NewGather creates a gather merging toward a top-k answer (k >= 1).
func NewGather(k int) *Gather { return &Gather{g: core.NewGatherSet(k)} }

// Fold merges one shard's matches under the shard's name and reports
// whether the fold applied (false: this source already contributed — e.g.
// the losing copy of a hedged request).
func (g *Gather) Fold(source string, matches []Match) bool { return g.g.Fold(source, matches) }

// Folded reports whether the named source has already contributed.
func (g *Gather) Folded(source string) bool { return g.g.Folded(source) }

// Sources returns the names of every folded source, sorted.
func (g *Gather) Sources() []string { return g.g.Sources() }

// Results returns the merged top-k, sorted by ascending distance with ties
// by ascending ID — the same shape every Engine query returns.
func (g *Gather) Results() []Match { return g.g.Results() }
