package hydra

import (
	"fmt"

	"hydra/internal/dataset"
	"hydra/internal/series"
	"hydra/internal/storage"
)

// Dataset is a handle on an in-memory collection of equal-length,
// Z-normalized series — the unit every engine is opened over. Handles are
// cheap to share: engines built over one Dataset alias its flat backing
// arena instead of copying the data.
type Dataset struct {
	d *dataset.Dataset
}

// OpenDataset reads a collection file in the suite's binary format (written
// by Dataset.Save or the hydra-gen CLI).
func OpenDataset(path string) (*Dataset, error) {
	d, err := dataset.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return &Dataset{d: d}, nil
}

// NewDataset builds a collection from raw rows. Every row must have the
// same length; the values are copied into a fresh flat arena and
// Z-normalized in place (the distance model of the whole suite assumes
// Z-normalized series, §4.2 of the paper).
func NewDataset(rows [][]float32) (*Dataset, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("hydra: empty dataset")
	}
	l := len(rows[0])
	if l == 0 {
		return nil, fmt.Errorf("hydra: zero-length series")
	}
	flat := storage.NewArena(len(rows) * l)
	for i, row := range rows {
		if len(row) != l {
			return nil, fmt.Errorf("hydra: series %d has length %d, want %d", i, len(row), l)
		}
		copy(flat[i*l:(i+1)*l], row)
	}
	d := dataset.FromFlat("user", flat, len(rows), l)
	for _, s := range d.Series {
		s.ZNormalize()
	}
	return &Dataset{d: d}, nil
}

// Generate produces one of the suite's synthetic collections: "synthetic"
// (the paper's random-walk generator) or the statistical stand-ins for its
// four real datasets ("seismic", "astro", "sald", "deep1b").
func Generate(kind string, n, length int, seed int64) (*Dataset, error) {
	d, err := dataset.ByName(kind, n, length, seed)
	if err != nil {
		return nil, err
	}
	return &Dataset{d: d}, nil
}

// Planted records where GenerateLongWalk planted its motif pairs and
// discord, so callers can assert the profile machinery recovers them.
type Planted = dataset.Planted

// GenerateLongWalk produces the matrix-profile workload's input: one long
// random-walk series (as a single-member collection, so it flows through
// every engine and file pipeline) with two planted motif pairs and one
// planted discord of length m. The returned Planted names their offsets;
// n must be at least 12·m so the planted segments stay non-overlapping.
func GenerateLongWalk(n, m int, seed int64) (*Dataset, Planted, error) {
	d, pl, err := dataset.LongWalk(n, m, seed)
	if err != nil {
		return nil, Planted{}, fmt.Errorf("hydra: %w", err)
	}
	return &Dataset{d: d}, pl, nil
}

// Save writes the collection in the suite's binary format.
func (d *Dataset) Save(path string) error { return d.d.SaveFile(path) }

// Name returns the collection's generator name ("synthetic", "user", ...).
func (d *Dataset) Name() string { return d.d.Name }

// Len returns the number of series in the collection.
func (d *Dataset) Len() int { return d.d.Len() }

// SeriesLen returns the length of each series.
func (d *Dataset) SeriesLen() int { return d.d.SeriesLen() }

// SizeBytes returns the raw size the collection occupies on the simulated
// disk (4 bytes per value).
func (d *Dataset) SizeBytes() int64 { return d.d.SizeBytes() }

// Series returns series i as a read-only view of the dataset's backing
// arena: do not mutate it (copy first if you need to).
func (d *Dataset) Series(i int) []float32 { return d.d.Series[i] }

// SeriesCountForGB translates a paper-scale collection size in GB into a
// series count at scale 1/scaleDivisor (1 reproduces the paper's sizes
// exactly; hydra-gen's -gb/-scale flags).
func SeriesCountForGB(gb float64, length int, scaleDivisor float64) int {
	return dataset.NumSeriesForGB(gb, length, 1/scaleDivisor)
}

// Workload is a handle on a query workload: a named list of query series,
// all of one length.
type Workload struct {
	w *dataset.Workload
}

// OpenWorkload reads a workload file (written by Workload.Save or
// hydra-gen).
func OpenWorkload(path string) (*Workload, error) {
	w, err := dataset.LoadWorkloadFile(path)
	if err != nil {
		return nil, err
	}
	return &Workload{w: w}, nil
}

// NewWorkload builds a workload from raw query rows; the values are copied
// and Z-normalized like NewDataset rows.
func NewWorkload(rows [][]float32) (*Workload, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("hydra: empty workload")
	}
	w := &dataset.Workload{Name: "user", Queries: make([]series.Series, len(rows))}
	for i, row := range rows {
		if len(row) != len(rows[0]) {
			return nil, fmt.Errorf("hydra: query %d has length %d, want %d", i, len(row), len(rows[0]))
		}
		s := make(series.Series, len(row))
		copy(s, row)
		s.ZNormalize()
		w.Queries[i] = s
	}
	return &Workload{w: w}, nil
}

// RandomWorkload generates the paper's Synth-Rand workload: random-walk
// queries unrelated to any collection.
func RandomWorkload(n, length int, seed int64) *Workload {
	return &Workload{w: dataset.SynthRand(n, length, seed)}
}

// ControlledWorkload generates the paper's Synth-Ctrl workload: queries are
// collection members perturbed with up to maxNoise standard deviations of
// noise, which controls how selective the workload is.
func ControlledWorkload(d *Dataset, n int, maxNoise float64, seed int64) *Workload {
	return &Workload{w: dataset.Ctrl(d.d, n, maxNoise, seed)}
}

// DeepOrigWorkload generates the deep-descriptor query workload (the
// paper's Deep-Orig queries).
func DeepOrigWorkload(n, length int, seed int64) *Workload {
	return &Workload{w: dataset.DeepOrig(n, length, seed)}
}

// Save writes the workload in the suite's binary format.
func (w *Workload) Save(path string) error { return w.w.SaveFile(path) }

// Name returns the workload's generator name.
func (w *Workload) Name() string { return w.w.Name }

// Len returns the number of queries.
func (w *Workload) Len() int { return len(w.w.Queries) }

// Query returns query i as a read-only view; pass it straight to
// Engine.Query.
func (w *Workload) Query(i int) []float32 { return w.w.Queries[i] }

// Queries returns views of every query, aligned with Query — the slice to
// hand to Engine.QueryBatch.
func (w *Workload) Queries() [][]float32 {
	out := make([][]float32, len(w.w.Queries))
	for i, q := range w.w.Queries {
		out[i] = q
	}
	return out
}

// Validate checks that every query matches the collection's series length.
func (w *Workload) Validate(seriesLen int) error { return w.w.Validate(seriesLen) }
