package hydra_test

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"

	"hydra"
	"hydra/internal/faultpoint"
	"hydra/internal/wal"
)

// The crash-drill conformance suite: a real child process (this test
// binary, re-executed) ingests series and is SIGKILLed mid-append — at a
// byte-precise WAL offset (wal.CrashEnvVar) or at an armed WAL faultpoint.
// The parent then recovers an engine from the ingest directory the child
// died in and asserts the durability contract:
//
//   - every acked append is present,
//   - at most the one in-flight unacked batch beyond that,
//   - never a torn batch,
//   - queries are bit-identical to an engine that never crashed, and
//   - a checkpoint plus re-recovery changes nothing.

const (
	drillBase    = 200 // series the child's base collection holds
	drillLen     = 32  // series length
	drillBatch   = 5   // series per appended batch
	drillBatches = 12  // batches the child tries to append
	drillSeed    = 424242
)

// drillRows is the deterministic row set both parent and child derive their
// data from — the child's base is rows[:drillBase], its appends come in
// order after that.
func drillRows() [][]float32 {
	return rawRows(drillBase+drillBatch*drillBatches, drillLen, drillSeed)
}

// TestCrashDrillChild is the child half of the drill: it is inert under a
// normal test run and only does work when re-executed by the parent with
// HYDRA_CRASH_CHILD set. It builds an ingesting engine and appends batches,
// printing "ACK <batches>" after each durable append; the WAL crash hook
// (or an armed faultpoint) interrupts it. On an append error it prints
// "STOP" and exits cleanly — an errored append is unacked by contract.
func TestCrashDrillChild(t *testing.T) {
	if os.Getenv("HYDRA_CRASH_CHILD") == "" {
		t.Skip("crash-drill child: only runs re-executed")
	}
	dir := os.Getenv("HYDRA_CRASH_DIR")
	method := os.Getenv("HYDRA_CRASH_METHOD")
	switch os.Getenv("HYDRA_CRASH_FAULT") {
	case "":
	case faultpoint.WALSlowFsync:
		faultpoint.ArmDelay(faultpoint.WALSlowFsync, 0)
	default:
		faultpoint.ArmN(os.Getenv("HYDRA_CRASH_FAULT"), 1)
	}
	rows := drillRows()
	e, err := hydra.BuildIndex(context.Background(), method,
		hydra.WithData(datasetFrom(t, rows[:drillBase])),
		hydra.WithLeafSize(32),
		hydra.WithIngestDir(dir))
	if err != nil {
		t.Fatalf("child build: %v", err)
	}
	for b := 0; b < drillBatches; b++ {
		lo := drillBase + b*drillBatch
		if err := e.Append(context.Background(), rows[lo:lo+drillBatch]...); err != nil {
			fmt.Println("STOP")
			return
		}
		fmt.Println("ACK", b+1)
	}
	fmt.Println("DONE")
	e.Close()
}

// runDrillChild re-executes the test binary as a crash-drill child and
// returns the number of batches it acked before dying (or finishing).
func runDrillChild(t *testing.T, dir, method string, extraEnv ...string) (acked int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestCrashDrillChild$")
	cmd.Env = append(os.Environ(),
		"HYDRA_CRASH_CHILD=1",
		"HYDRA_CRASH_DIR="+dir,
		"HYDRA_CRASH_METHOD="+method,
	)
	cmd.Env = append(cmd.Env, extraEnv...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	err := cmd.Run()
	if err != nil && !strings.Contains(err.Error(), "signal: killed") {
		t.Fatalf("child died unexpectedly (%v):\n%s", err, out.String())
	}
	sc := bufio.NewScanner(&out)
	for sc.Scan() {
		if n, ok := strings.CutPrefix(sc.Text(), "ACK "); ok {
			v, err := strconv.Atoi(strings.TrimSpace(n))
			if err != nil {
				t.Fatalf("bad ack line %q", sc.Text())
			}
			acked = v
		}
	}
	return acked
}

// verifyDrillRecovery opens an engine over the crashed child's ingest
// directory and asserts the durability contract against the acked count,
// including the checkpoint-then-re-recover no-op.
func verifyDrillRecovery(t *testing.T, dir, method string, acked int) {
	t.Helper()
	rows := drillRows()
	queries := hydra.RandomWorkload(3, drillLen, 7)
	e, err := hydra.BuildIndex(context.Background(), method,
		hydra.WithData(datasetFrom(t, rows[:drillBase])),
		hydra.WithLeafSize(32),
		hydra.WithIngestDir(dir))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	tail := e.Len() - drillBase
	if tail%drillBatch != 0 {
		t.Fatalf("recovered a torn batch: %d extra series", tail)
	}
	batches := tail / drillBatch
	if batches < acked || batches > acked+1 {
		t.Fatalf("recovered %d batches, child acked %d (want acked or acked+1)", batches, acked)
	}
	// Bit-identity against an engine that never crashed: same series, fresh
	// build, no WAL.
	assertParity(t, e, oracle(t, method, rows[:drillBase+tail]), queries, 5)
	// Fold the tail into a checkpoint, recover again: nothing may change.
	if err := e.Checkpoint(context.Background()); err != nil {
		t.Fatal(err)
	}
	e.Close()
	r, err := hydra.BuildIndex(context.Background(), method,
		hydra.WithData(datasetFrom(t, rows[:drillBase])),
		hydra.WithLeafSize(32),
		hydra.WithIngestDir(dir))
	if err != nil {
		t.Fatalf("re-recovery after checkpoint: %v", err)
	}
	defer r.Close()
	if r.Len() != drillBase+tail {
		t.Fatalf("re-recovery changed the collection: %d != %d", r.Len(), drillBase+tail)
	}
	assertParity(t, r, oracle(t, method, rows[:drillBase+tail]), queries, 5)
}

// TestCrashDrillRandomOffsets SIGKILLs the child at 20 random WAL byte
// offsets (rotating through the ingest-capable methods) and asserts
// recovery for each.
func TestCrashDrillRandomOffsets(t *testing.T) {
	if testing.Short() {
		t.Skip("crash drills re-exec the test binary")
	}
	// Rough upper bound of the child's total WAL traffic: header plus
	// framed batches; offsets beyond the end exercise the no-crash path.
	perBatch := 8 + 4 + 3 + drillBatch*drillLen*4
	maxBytes := 12 + drillBatches*perBatch
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 20; i++ {
		offset := rng.Intn(maxBytes)
		method := ingestMethods[i%len(ingestMethods)]
		t.Run(fmt.Sprintf("%s-at-%d", method, offset), func(t *testing.T) {
			dir := t.TempDir()
			acked := runDrillChild(t, dir, method,
				fmt.Sprintf("%s=%d", wal.CrashEnvVar, offset))
			verifyDrillRecovery(t, dir, method, acked)
		})
	}
}

// TestCrashDrillFaultpoints runs the child once per armed WAL faultpoint:
// the injected fault interrupts (or delays) an append, the child stops, and
// recovery must still honor exactly the acked prefix.
func TestCrashDrillFaultpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("crash drills re-exec the test binary")
	}
	points := []string{
		faultpoint.WALShortWrite,
		faultpoint.WALSyncError,
		faultpoint.WALTornTail,
		faultpoint.WALSlowFsync,
	}
	for i, point := range points {
		method := ingestMethods[i%len(ingestMethods)]
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			acked := runDrillChild(t, dir, method, "HYDRA_CRASH_FAULT="+point)
			if point == faultpoint.WALSlowFsync && acked != drillBatches {
				t.Fatalf("slow fsync lost appends: acked %d", acked)
			}
			verifyDrillRecovery(t, dir, method, acked)
		})
	}
}
