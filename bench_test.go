// Package hydra's root benchmark harness: one testing.B benchmark per table
// and figure of the paper (regenerating the artifact at a reduced scale and
// reporting its headline numbers as custom metrics), plus per-method build
// and query micro-benchmarks.
//
// Full-size regeneration is the job of cmd/hydra-bench; these benches keep
// every artifact runnable through the standard Go toolchain:
//
//	go test -bench=Fig6 -benchmem
//
// The harness lives in the external test package: it imports
// internal/experiments, which itself imports hydra (the ingest
// experiment drives Engine.Append), so an in-package test file would
// close an import cycle.
package hydra_test

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"strconv"
	"testing"

	"hydra/internal/core"
	"hydra/internal/dataset"
	"hydra/internal/experiments"
	_ "hydra/internal/methods"
	"hydra/internal/scan/ucr"
	"hydra/internal/scan/ucrdtw"
	"hydra/internal/series"
	"hydra/internal/storage"
	"hydra/internal/subseq"
)

// benchConfig is the reduced scale used by the bench harness.
func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig(dataset.ScaleQuick)
	cfg.NumQueries = 10
	cfg.SeriesLen = 128
	return cfg
}

func reportRows(b *testing.B, rep *experiments.Report) {
	b.Helper()
	b.ReportMetric(float64(len(rep.Rows)), "rows")
}

// BenchmarkTable1_Registry regenerates the method-properties matrix.
func BenchmarkTable1_Registry(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := experiments.Table1()
		if len(rep.Rows) != 10 {
			b.Fatalf("expected 10 methods, got %d", len(rep.Rows))
		}
	}
}

// BenchmarkFig2_LeafSize regenerates the leaf-size parametrization sweep.
func BenchmarkFig2_LeafSize(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Fig2LeafSize(cfg)
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, rep)
	}
}

// BenchmarkFig3_Scalability regenerates the all-methods scalability figure.
func BenchmarkFig3_Scalability(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Fig3Scalability(cfg)
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, rep)
	}
}

// BenchmarkFig4_DiskAccesses regenerates the disk-access counts.
func BenchmarkFig4_DiskAccesses(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Fig4DiskAccesses(cfg, []float64{25, 100}, []int{128, 512})
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, rep)
	}
}

// BenchmarkFig5_Lengths regenerates the series-length scalability figure.
func BenchmarkFig5_Lengths(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Fig5Lengths(cfg, []int{128, 512, 2048})
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, rep)
	}
}

// BenchmarkFig6_HDD regenerates the HDD scalability comparison.
func BenchmarkFig6_HDD(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Fig6HDD(cfg, []float64{25, 100, 250})
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, rep)
	}
}

// BenchmarkFig7_SSD regenerates the SSD scalability comparison.
func BenchmarkFig7_SSD(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Fig7SSD(cfg, []float64{25, 100, 250})
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, rep)
	}
}

// BenchmarkFig8_Footprint regenerates the footprint + TLB figure.
func BenchmarkFig8_Footprint(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Fig8Footprint(cfg, []float64{25, 100}, []int{128})
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, rep)
	}
}

// BenchmarkFig9_Pruning regenerates the pruning-ratio figure.
func BenchmarkFig9_Pruning(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Fig9Pruning(cfg)
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, rep)
	}
}

// BenchmarkFig10_Matrix regenerates the recommendation matrix.
func BenchmarkFig10_Matrix(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Fig10Matrix(cfg)
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, rep)
	}
}

// BenchmarkTable2_Controlled regenerates the controlled-workloads summary.
func BenchmarkTable2_Controlled(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Table2Controlled(cfg)
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, rep)
	}
}

// BenchmarkAblation regenerates the design-choice ablation study (paper §5
// discussion: scan optimizations, SFA binning, VA+ bit allocation, DSTree
// split policy).
func BenchmarkAblation(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Ablation(cfg)
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, rep)
	}
}

// BenchmarkMethods_Build measures raw index construction per method
// (CPU only; simulated I/O is counted, not performed).
func BenchmarkMethods_Build(b *testing.B) {
	ds := dataset.RandomWalk(4000, 128, 42)
	for _, name := range core.Names() {
		name := name
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := core.New(name, core.Options{LeafSize: 64})
				if err != nil {
					b.Fatal(err)
				}
				if err := m.Build(core.NewCollection(ds)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMethods_Query measures exact 1-NN query answering per method over
// a pre-built index.
func BenchmarkMethods_Query(b *testing.B) {
	ds := dataset.RandomWalk(4000, 128, 42)
	queries := dataset.SynthRand(64, 128, 7).Queries
	for _, name := range core.Names() {
		name := name
		b.Run(name, func(b *testing.B) {
			m, err := core.New(name, core.Options{LeafSize: 64})
			if err != nil {
				b.Fatal(err)
			}
			coll := core.NewCollection(ds)
			if err := m.Build(coll); err != nil {
				b.Fatal(err)
			}
			var seeks int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				before := coll.Counters.Snapshot()
				_, _, err := m.KNN(context.Background(), queries[i%len(queries)], 1)
				if err != nil {
					b.Fatal(err)
				}
				seeks += coll.Counters.Snapshot().Sub(before).RandOps
			}
			b.ReportMetric(float64(seeks)/float64(b.N), "seeks/query")
		})
	}
}

// BenchmarkBufferTuning regenerates the construction buffer-size sweep
// (paper §4.3.1).
func BenchmarkBufferTuning(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.BufferTuning(cfg)
		if err != nil {
			b.Fatal(err)
		}
		reportRows(b, rep)
	}
}

// BenchmarkUCRDTW measures exact DTW 1-NN with the LB_Keogh cascade at
// several warping bands (the paper's named carry-over setting).
func BenchmarkUCRDTW(b *testing.B) {
	ds := dataset.RandomWalk(2000, 128, 42)
	queries := dataset.Ctrl(ds, 16, 0.3, 7).Queries
	for _, w := range []int{0, 6, 12} {
		w := w
		b.Run("band="+strconv.Itoa(w), func(b *testing.B) {
			s := ucrdtw.New(w)
			coll := core.NewCollection(ds)
			if err := s.Build(coll); err != nil {
				b.Fatal(err)
			}
			var pruned int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, qs, err := s.KNN(context.Background(), queries[i%len(queries)], 1)
				if err != nil {
					b.Fatal(err)
				}
				pruned += qs.LBCalcs - qs.DistCalcs
			}
			b.ReportMetric(float64(pruned)/float64(b.N), "dtw-pruned/query")
		})
	}
}

// BenchmarkSubsequenceMASS measures exact subsequence matching over a long
// series (MASS's native domain).
func BenchmarkSubsequenceMASS(b *testing.B) {
	long := dataset.RandomWalk(1, 1<<16, 9).Series[0]
	q := dataset.SynthRand(1, 256, 10).Queries[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := subseq.MASS(long, q, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDeviceModels exercises the simulated-time conversion (sanity: it
// must be trivially cheap) across both device profiles.
func BenchmarkDeviceModels(b *testing.B) {
	snap := storage.Snapshot{SeqOps: 100, SeqBytes: 1 << 30, RandOps: 1 << 14, RandBytes: 1 << 24}
	for _, dev := range []storage.DeviceProfile{storage.HDD, storage.SSD} {
		b.Run(dev.Name, func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				total += snap.IOTime(dev).Seconds()
			}
			_ = total
		})
	}
}

// BenchmarkKernels compares the scalar early-abandoning distance kernels
// against the blocked multi-accumulator variants, with a wide-open bound
// (full computation, the kernels' throughput) and with a tight bound (the
// abandon-dominated regime of a well-pruned scan). The blocked kernels
// dispatch through internal/simd: run once normally and once with
// HYDRA_SIMD=off to compare the AVX2 and pure-Go backends (the per-kernel
// backend benchmarks live in internal/simd's own suite).
func BenchmarkKernels(b *testing.B) {
	const n = 256
	q := dataset.RandomWalk(1, n, 1).Series[0]
	c := dataset.RandomWalk(1, n, 2).Series[0]
	ord := series.NewOrder(q)
	full := series.SquaredDist(q, c)
	kernels := []struct {
		name string
		f    func(bound float64) float64
	}{
		{"scalar", func(bound float64) float64 { return series.SquaredDistEA(q, c, bound) }},
		{"blocked", func(bound float64) float64 { return series.SquaredDistEABlocked(q, c, bound) }},
		{"scalar-ordered", func(bound float64) float64 { return series.SquaredDistEAOrdered(q, c, ord, bound) }},
		{"blocked-ordered", func(bound float64) float64 { return series.SquaredDistEAOrderedBlocked(q, c, ord, bound) }},
	}
	for _, regime := range []struct {
		name  string
		bound float64
	}{{"full", math.Inf(1)}, {"abandon", full / 8}} {
		for _, k := range kernels {
			b.Run(regime.name+"/"+k.name, func(b *testing.B) {
				var sum float64
				for i := 0; i < b.N; i++ {
					sum += k.f(regime.bound)
				}
				_ = sum
			})
		}
	}
}

// BenchmarkParallelScan measures the parallel UCR-suite scan against the
// serial one on the ScaleQuick dataset (the acceptance target is >= 2x at
// GOMAXPROCS >= 4). Both modes return bit-identical answers; only wall
// clock differs.
func BenchmarkParallelScan(b *testing.B) {
	n := dataset.NumSeriesForGB(100, 256, dataset.ScaleQuick)
	ds := dataset.RandomWalk(n, 256, 42)
	queries := dataset.SynthRand(16, 256, 7).Queries
	workerCounts := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p > 4 {
		workerCounts = append(workerCounts, p)
	}
	for _, w := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			s := ucr.New(core.Options{Workers: w})
			if err := s.Build(core.NewCollection(ds)); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := s.KNN(context.Background(), queries[i%len(queries)], 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWorkloadConcurrent measures query throughput of the pooled
// workload runner (inter-query parallelism) against the serial runner.
func BenchmarkWorkloadConcurrent(b *testing.B) {
	n := dataset.NumSeriesForGB(25, 256, dataset.ScaleQuick)
	ds := dataset.RandomWalk(n, 256, 42)
	wl := dataset.SynthRand(32, 256, 7)
	repCounts := []int{1}
	if p := runtime.GOMAXPROCS(0); p > 1 {
		repCounts = append(repCounts, p)
	}
	for _, nrep := range repCounts {
		b.Run(fmt.Sprintf("replicas=%d", nrep), func(b *testing.B) {
			reps, err := core.NewReplicas("UCR-Suite", core.Options{}, ds, nrep)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.RunWorkloadConcurrent(context.Background(), reps, wl, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkArenaVsSliced compares a full leaf-style scan over the flat
// arena layout (storage.SeriesFile) against the legacy slice-of-slices
// layout. To make the sliced baseline honest about what a long-lived heap
// looks like, its series are independent allocations created in shuffled
// order (interleaved allocation is what the old layout degraded to once
// index build, buffers and GC had churned the heap); the arena scan streams
// one contiguous 64-byte-aligned block. Both scans compute identical sums.
func BenchmarkArenaVsSliced(b *testing.B) {
	const n, l = 8192, 256
	ds := dataset.RandomWalk(n, l, 42)
	coll := core.NewCollection(ds) // aliases the generator's arena
	q := dataset.SynthRand(1, l, 7).Queries[0]

	sliced := make([]series.Series, n)
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		sliced[i] = ds.Series[i].Clone()
	}

	bound := math.Inf(1) // full computation: the memory-bound regime
	b.Run("arena", func(b *testing.B) {
		b.SetBytes(int64(n) * int64(l) * storage.BytesPerValue)
		var sum float64
		for i := 0; i < b.N; i++ {
			for j := 0; j < n; j++ {
				sum += series.SquaredDistEABlocked(q, coll.File.Peek(j), bound)
			}
		}
		_ = sum
	})
	b.Run("sliced", func(b *testing.B) {
		b.SetBytes(int64(n) * int64(l) * storage.BytesPerValue)
		var sum float64
		for i := 0; i < b.N; i++ {
			for j := 0; j < n; j++ {
				sum += series.SquaredDistEABlocked(q, sliced[j], bound)
			}
		}
		_ = sum
	})
}

// BenchmarkQueryAllocs tracks steady-state heap allocations per exact 1-NN
// query over a pre-built index (-benchmem columns). The pooled-scratch
// methods sit at 1 alloc/query (the returned matches); TestQueryAllocBudget
// gates them in CI.
func BenchmarkQueryAllocs(b *testing.B) {
	ds := dataset.RandomWalk(4000, 256, 42)
	queries := dataset.SynthRand(16, 256, 7).Queries
	for _, name := range []string{"UCR-Suite", "ADS+", "iSAX2+", "DSTree", "SFA", "VA+file"} {
		name := name
		b.Run(name, func(b *testing.B) {
			m, err := core.New(name, core.Options{LeafSize: 64})
			if err != nil {
				b.Fatal(err)
			}
			coll := core.NewCollection(ds)
			if err := m.Build(coll); err != nil {
				b.Fatal(err)
			}
			for _, q := range queries { // warm scratch pools
				if _, _, err := m.KNN(context.Background(), q, 1); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := m.KNN(context.Background(), queries[i%len(queries)], 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkKNNHeap measures the shared k-NN result set.
func BenchmarkKNNHeap(b *testing.B) {
	for _, k := range []int{1, 10, 100} {
		b.Run("k="+strconv.Itoa(k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				set := core.NewKNNSet(k)
				for j := 0; j < 10000; j++ {
					set.Add(j, float64((j*2654435761)%100000))
				}
				if len(set.Results()) != k {
					b.Fatal("bad result size")
				}
			}
		})
	}
}
