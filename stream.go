package hydra

import (
	"context"
	"fmt"

	"hydra/internal/core"
	"hydra/internal/series"
)

// StreamUpdate is one event of a QueryStream. A stream delivers zero or
// more progressive updates (Final unset, Best holding the candidate that
// improved the query's best-so-far) followed by exactly one terminal event
// (Final set): either the answer in Matches/Stats, or Err.
type StreamUpdate struct {
	// Best is the candidate that improved the best-so-far (progressive
	// events only).
	Best Match
	// Matches is the final answer (terminal event only, nil on error). On an
	// exact engine it is bit-identical to Query.
	Matches []Match
	// Stats carries the final query's cost counters (terminal event only),
	// including the answering mode and guarantee parameters on non-exact
	// engines.
	Stats QueryStats
	// Mode tags the event's guarantee class. On a progressive event it names
	// the approximate mode that produced the candidate: "ng" for an index
	// engine's approximate head-start descent, "" for an exact traversal's
	// own best-so-far improvement. On the terminal event it is the answering
	// mode ("exact", "ng", "delta-eps", "budget") — matching Stats.Mode, so
	// a consumer that only watches events still knows what guarantee the
	// answer carries.
	Mode string
	// Final marks the terminal event; the channel closes after it.
	Final bool
	// Err reports a failed or cancelled query (terminal event only).
	Err error
}

// streamBuffer is the channel capacity of a QueryStream. Progressive
// updates are best-effort: when the consumer lags behind the buffer they
// are dropped, never the terminal event.
const streamBuffer = 16

// QueryStream answers a k-NN query while streaming best-so-far
// improvements — the anytime/early-result form of Query. How much progress
// is visible depends on the method:
//
//   - Scan engines (UCR-Suite) report every candidate that tightens the
//     scan's shared best-so-far bound as it happens.
//   - Index engines with ng-approximate support (ADS+, DSTree, iSAX2+,
//     SFA, VA+file) first run the approximate descent (one root-to-leaf
//     path) and report its best match tagged Mode "ng", then run the exact
//     query. The extra approximate pass charges its own simulated I/O.
//   - Other methods deliver only the terminal event.
//
// On a non-exact engine (WithApproxMode) the head-start is skipped — the
// query already answers in an approximate mode — and the stream delivers
// the mode's answer as its terminal event, tagged with the answering mode.
//
// The returned channel delivers progressive updates best-effort (a slow
// consumer misses intermediate updates, never the result), then exactly
// one terminal event — always, even against a full buffer — then closes.
// On an exact engine the terminal Matches are bit-identical to Query's
// answer. Cancelling ctx ends the stream promptly with a terminal Err
// event. The background query never outlives its own completion: an
// abandoned, never-drained stream costs the remainder of the (cancellable)
// query and a buffered channel, not a leaked goroutine.
func (e *Engine) QueryStream(ctx context.Context, q []float32, k int) <-chan StreamUpdate {
	if ctx == nil {
		ctx = context.Background()
	}
	ch := make(chan StreamUpdate, streamBuffer)
	go func() {
		defer close(ch)
		progress := func(u StreamUpdate) {
			select {
			case ch <- u:
			default: // consumer lagging: drop the update, keep scanning
			}
		}

		var (
			matches []Match
			qs      QueryStats
			err     error
		)
		// The query runs inside a panic boundary: a panicking method (or an
		// armed query/panic faultpoint) must surface as a terminal Err event
		// on this stream, never as a process crash from an unattended
		// goroutine.
		func() {
			defer func() {
				if p := recover(); p != nil {
					matches, err = nil, fmt.Errorf("%w: %v", ErrQueryPanic, p)
				}
			}()
			if e.spec.Mode != core.ModeExact {
				// Non-exact engines answer in their own mode; the exact-path
				// head-start would be redundant work under a weaker guarantee.
				// QueryWithStats takes the ingest read lock itself.
				matches, qs, err = e.QueryWithStats(ctx, q, k)
				return
			}
			// One ingest read lock spans the whole streamed query, so the
			// approximate head-start and the exact refinement answer over the
			// same collection extent even while appends are arriving. The
			// lock-free queryWithStatsLocked avoids re-entering RLock under a
			// possibly blocked writer, which would deadlock.
			if ing := e.ing; ing != nil {
				ing.mu.RLock()
				defer ing.mu.RUnlock()
			}
			switch m := e.m.(type) {
			case core.KNNStreamer:
				matches, qs, err = core.RunQueryStream(ctx, m, e.coll, series.Series(q), k, func(b Match) {
					progress(StreamUpdate{Best: b})
				})
			case core.ApproxMethod:
				var approx []Match
				approx, _, err = m.ApproxKNN(ctx, series.Series(q), k)
				if err == nil {
					if len(approx) > 0 {
						progress(StreamUpdate{Best: approx[0], Mode: core.ModeNG.String()})
					}
					matches, qs, err = e.queryWithStatsLocked(ctx, q, k)
				}
			default:
				matches, qs, err = e.queryWithStatsLocked(ctx, q, k)
			}
		}()

		mode := qs.Mode
		if mode == "" {
			mode = core.ModeExact.String()
		}
		final := StreamUpdate{Matches: matches, Stats: qs, Mode: mode, Final: true}
		if err != nil {
			final = StreamUpdate{Err: err, Mode: mode, Final: true}
		}
		// The terminal event is delivered unconditionally: the query has
		// finished, so this goroutine is the only sender — when the buffer
		// is full it evicts the oldest progressive update to make room
		// (progressive updates are droppable by contract, the terminal
		// event is not) and never blocks, so an abandoned stream cannot
		// leak the goroutine.
		for {
			select {
			case ch <- final:
				return
			default:
				select {
				case <-ch:
				default:
				}
			}
		}
	}()
	return ch
}
