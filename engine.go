package hydra

import (
	"context"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"hydra/internal/core"
	"hydra/internal/persist"
	"hydra/internal/series"
	"hydra/internal/stats"

	// Importing the methods umbrella registers all ten similarity search
	// approaches, so every engine constructor can resolve them by name.
	_ "hydra/internal/methods"
)

// Match is one answer of a k-NN query: the matching series' position in the
// collection and its true Euclidean distance to the query.
type Match = core.Match

// QueryStats carries one query's cost counters: distance and lower-bound
// computations, series examined, simulated I/O, and CPU time. Its
// TotalTime(Device) converts the counters into simulated wall time under a
// device profile.
type QueryStats = stats.QueryStats

// BuildStats carries one index construction's (or snapshot load's) cost
// counters; FromSnapshot distinguishes pay-once builds from per-run loads.
type BuildStats = stats.BuildStats

// Engine is a queryable similarity search engine: one method (a scan or a
// built index) bound to one collection. Engines are safe for concurrent
// use — queries only read the built state — and every query path accepts a
// context honored at block granularity (see Query).
//
// Engines come from the three constructors: Open (scan over a dataset
// file), BuildIndex (construct an index method), LoadIndex (restore a
// snapshot). There is no Close: engines hold memory only, reclaimed by the
// garbage collector when the last reference drops.
type Engine struct {
	m      core.Method
	coll   *core.Collection
	data   *Dataset
	device Device
	build  BuildStats

	batchWorkers int
}

// Open opens a collection file and returns a scan engine over it: the
// UCR-Suite optimized sequential scan, ready without any build phase. Index
// methods come from BuildIndex; Open is the zero-setup entry point.
func Open(dataset string, opts ...Option) (*Engine, error) {
	cfg := defaultConfig()
	cfg.apply(opts)
	if dataset != "" && (cfg.data != nil || cfg.dataPath != "") {
		return nil, fmt.Errorf("hydra: Open got both a dataset path and a WithData/WithDatasetFile option")
	}
	if cfg.dataPath == "" {
		cfg.dataPath = dataset
	}
	d, err := cfg.dataset()
	if err != nil {
		return nil, err
	}
	m, err := core.New("UCR-Suite", cfg.opts)
	if err != nil {
		return nil, err
	}
	coll := core.NewCollection(d.d)
	if err := m.Build(coll); err != nil {
		return nil, err
	}
	return cfg.engine(m, coll, d, BuildStats{Finished: true}), nil
}

// BuildIndex constructs the named method over the configured dataset
// (WithData or WithDatasetFile) and returns an engine over the built index.
// The context is checked between construction phases; cooperative
// cancellation inside a build is not supported — cancel promptness is a
// query-path guarantee.
//
// With WithIndexDir, BuildIndex first tries the snapshot cache: a matching
// snapshot is loaded instead of building (BuildStats.FromSnapshot reports
// which happened), and a fresh build is saved back to the cache.
func BuildIndex(ctx context.Context, method string, opts ...Option) (*Engine, error) {
	cfg := defaultConfig()
	cfg.apply(opts)
	d, err := cfg.dataset()
	if err != nil {
		return nil, err
	}
	if err := core.Canceled(ctx); err != nil {
		return nil, err
	}
	m, err := core.New(method, cfg.opts)
	if err != nil {
		return nil, err
	}
	coll := core.NewCollection(d.d)

	if _, ok := m.(core.Persistable); ok && cfg.indexDir != "" {
		if cached, bs, ok := loadCached(cfg.cachePath(method, coll), coll); ok {
			return cfg.engine(cached, coll, d, bs), nil
		}
	}
	bs, err := core.BuildInstrumented(m, coll)
	if err != nil {
		return nil, fmt.Errorf("hydra: building %s: %w", method, err)
	}
	if err := core.Canceled(ctx); err != nil {
		return nil, err
	}
	if p, ok := m.(core.Persistable); ok && cfg.indexDir != "" {
		if err := core.SaveSnapshotFile(p, coll, cfg.cachePath(method, coll)); err != nil {
			return nil, fmt.Errorf("hydra: caching %s snapshot: %w", method, err)
		}
	}
	return cfg.engine(m, coll, d, bs), nil
}

// LoadIndex restores an index snapshot (written by Engine.SaveIndex or the
// hydra-build CLI) over the configured dataset (WithData or
// WithDatasetFile) and returns an engine over it. The snapshot names its
// own method and build options; loading verifies the collection
// fingerprint, so a snapshot never silently answers for the wrong data.
// The loaded engine answers queries bit-identically to the engine that was
// saved.
func LoadIndex(ctx context.Context, path string, opts ...Option) (*Engine, error) {
	cfg := defaultConfig()
	cfg.apply(opts)
	d, err := cfg.dataset()
	if err != nil {
		return nil, err
	}
	if err := core.Canceled(ctx); err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	coll := core.NewCollection(d.d)
	m, bs, err := core.LoadIndexInstrumented(f, coll)
	if err != nil {
		return nil, fmt.Errorf("hydra: loading %s: %w", path, err)
	}
	return cfg.engine(m, coll, d, bs), nil
}

func (c *config) engine(m core.Method, coll *core.Collection, d *Dataset, bs BuildStats) *Engine {
	// Workers was already handed to the method factory through core.Options.
	return &Engine{
		m: m, coll: coll, data: d,
		device:       c.device,
		build:        bs,
		batchWorkers: c.resolvedBatchWorkers(),
	}
}

// cachePath derives the snapshot-cache entry for (method, collection,
// options) through the shared core helper — the same key format
// hydra-bench uses, so the two cache directories are interchangeable.
func (c *config) cachePath(method string, coll *core.Collection) string {
	return core.SnapshotCachePath(c.indexDir, method, coll, c.opts)
}

// loadCached loads a cache entry if present and intact; a stale or damaged
// entry reports !ok and the caller rebuilds.
func loadCached(path string, coll *core.Collection) (core.Method, BuildStats, bool) {
	f, err := os.Open(path)
	if err != nil {
		return nil, BuildStats{}, false
	}
	defer f.Close()
	m, bs, err := core.LoadIndexInstrumented(f, coll)
	if err != nil {
		return nil, BuildStats{}, false
	}
	return m, bs, true
}

// SnapshotName maps a method name to its conventional snapshot file name
// ("VA+file" → "va-file.hydx") — hydra-build's multi-method output layout
// and the WithIndexDir cache share the same stems.
func SnapshotName(method string) string {
	return persist.FileStem(method) + persist.SnapshotExt
}

// SaveIndex writes the engine's built index as a versioned snapshot that
// LoadIndex (or hydra-query -index) can restore, with write-then-rename so
// a crash cannot leave a truncated file. It fails for methods without
// build state (see PersistableMethods).
func (e *Engine) SaveIndex(path string) error {
	p, ok := e.m.(core.Persistable)
	if !ok {
		return fmt.Errorf("hydra: method %s does not support snapshots", e.m.Name())
	}
	return core.SaveSnapshotFile(p, e.coll, path)
}

// Method returns the engine's method name (as used in the paper).
func (e *Engine) Method() string { return e.m.Name() }

// Len returns the number of series in the engine's collection.
func (e *Engine) Len() int { return e.coll.File.Len() }

// SeriesLen returns the collection's series length — the length every
// query must have.
func (e *Engine) SeriesLen() int { return e.coll.File.SeriesLen() }

// Device returns the engine's simulated disk profile.
func (e *Engine) Device() Device { return e.device }

// BuildStats returns the cost of constructing (or loading) the engine's
// index; zero-valued for scan engines, which have no build phase.
func (e *Engine) BuildStats() BuildStats { return e.build }

// Query answers an exact k-nearest-neighbors query: the k collection
// series closest to q in Euclidean distance, sorted by ascending distance
// (ties by ascending ID).
//
// Cancellation: the query polls ctx at block granularity and returns
// ctx.Err() within one block of work after a cancel or deadline — the
// engine stays consistent and immediately reusable. Queries that complete
// are bit-identical to the same query under context.Background().
//
// The steady-state query path does not allocate beyond the returned
// matches (per-query scratch is pooled), so a serving loop can run it at
// full rate without GC pressure.
func (e *Engine) Query(ctx context.Context, q []float32, k int) ([]Match, error) {
	matches, _, err := e.QueryWithStats(ctx, q, k)
	return matches, err
}

// QueryWithStats is Query plus the paper's per-query cost counters
// (distance calculations, pruning, simulated I/O, CPU time).
func (e *Engine) QueryWithStats(ctx context.Context, q []float32, k int) ([]Match, QueryStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return core.RunQuery(ctx, e.m, e.coll, series.Series(q), k)
}

// QueryBatch answers a batch of queries concurrently on up to
// WithBatchWorkers workers, amortizing per-query scratch through the
// engine's pools. The returned slice is aligned with qs.
//
// Partial-failure semantics (pinned by the public test suite): queries are
// isolated — one query's failure does not abandon its siblings — and
// results[i] is non-nil exactly for the queries that succeeded. The
// returned error is the first failure by query index (nil when everything
// succeeded); QueryBatchErrors reports every query's own error. Cancelling
// ctx stops the batch promptly: in-flight queries return ctx.Err() within
// one block, queued queries never start, and the batch reports the context
// error.
func (e *Engine) QueryBatch(ctx context.Context, qs [][]float32, k int) ([][]Match, error) {
	results, errs := e.QueryBatchErrors(ctx, qs, k)
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// QueryBatchErrors is QueryBatch with per-query error attribution: both
// returned slices are aligned with qs, and exactly one of results[i],
// errs[i] is non-nil for each query — so a serving layer can tell a
// malformed query (fix the input) from a deadline overrun (retry) within
// one batch.
func (e *Engine) QueryBatchErrors(ctx context.Context, qs [][]float32, k int) ([][]Match, []error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([][]Match, len(qs))
	errs := make([]error, len(qs))
	if len(qs) == 0 {
		return results, errs
	}
	workers := e.batchWorkers
	if workers > len(qs) {
		workers = len(qs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				qi := int(next.Add(1)) - 1
				if qi >= len(qs) {
					return
				}
				if err := core.Canceled(ctx); err != nil {
					errs[qi] = err
					continue // mark every remaining claimed query cancelled
				}
				matches, err := e.Query(ctx, qs[qi], k)
				if err != nil {
					errs[qi] = err
					continue
				}
				results[qi] = matches
			}
		}()
	}
	wg.Wait()
	return results, errs
}
