package hydra

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"hydra/internal/core"
	"hydra/internal/persist"
	"hydra/internal/series"
	"hydra/internal/stats"

	// Importing the methods umbrella registers all ten similarity search
	// approaches, so every engine constructor can resolve them by name.
	_ "hydra/internal/methods"
)

// Match is one answer of a k-NN query: the matching series' position in the
// collection and its true Euclidean distance to the query.
type Match = core.Match

// QueryStats carries one query's cost counters: distance and lower-bound
// computations, series examined, simulated I/O, and CPU time. Its
// TotalTime(Device) converts the counters into simulated wall time under a
// device profile.
type QueryStats = stats.QueryStats

// BuildStats carries one index construction's (or snapshot load's) cost
// counters; FromSnapshot distinguishes pay-once builds from per-run loads.
type BuildStats = stats.BuildStats

// Engine is a queryable similarity search engine: one method (a scan or a
// built index) bound to one collection. Engines are safe for concurrent
// use — queries only read the built state — and every query path accepts a
// context honored at block granularity (see Query).
//
// Engines come from the three constructors: Open (scan over a dataset
// file), BuildIndex (construct an index method), LoadIndex (restore a
// snapshot). A read-only engine holds memory only, reclaimed by the garbage
// collector when the last reference drops; an ingesting engine
// (WithIngestDir) additionally holds its write-ahead log open and should be
// Closed when done — see Append, Checkpoint and Close.
type Engine struct {
	m      core.Method
	coll   *core.Collection
	data   *Dataset
	device Device
	build  BuildStats

	batchWorkers      int
	partialOnDeadline bool
	// workers is the engine's WithWorkers setting, retained for the work
	// the facade runs itself (matrix-profile diagonals); query-path
	// parallelism was already handed to the method factory.
	workers int
	// Shard placement (WithShard): index/count of the slice this engine
	// serves and the collection offset of its first series; count == 0 for
	// engines over a whole collection.
	shardIndex, shardCount, shardOffset int
	// spec is the engine's answering mode (WithApproxMode and friends); the
	// zero value is exact search. Per-request modes derive engines with
	// WithQueryOptions instead of mutating this.
	spec core.ApproxSpec
	// ing is the durable-ingestion state (WithIngestDir), nil on read-only
	// engines. A pointer, so engines derived with WithQueryOptions share
	// their parent's ingest pipeline and append/query exclusion.
	ing *ingestState
}

// Open opens a collection file and returns a scan engine over it: the
// UCR-Suite optimized sequential scan, ready without any build phase. Index
// methods come from BuildIndex; Open is the zero-setup entry point.
func Open(dataset string, opts ...Option) (*Engine, error) {
	cfg := defaultConfig()
	cfg.apply(opts)
	if err := cfg.resolveQuerySpec(); err != nil {
		return nil, err
	}
	if dataset != "" && (cfg.data != nil || cfg.dataPath != "") {
		return nil, fmt.Errorf("hydra: Open got both a dataset path and a WithData/WithDatasetFile option")
	}
	if cfg.dataPath == "" {
		cfg.dataPath = dataset
	}
	d, err := cfg.dataset()
	if err != nil {
		return nil, err
	}
	m, err := core.New("UCR-Suite", cfg.opts)
	if err != nil {
		return nil, err
	}
	coll := core.NewCollection(d.d)
	if err := m.Build(coll); err != nil {
		return nil, err
	}
	return cfg.engine(m, coll, d, BuildStats{Finished: true})
}

// BuildIndex constructs the named method over the configured dataset
// (WithData or WithDatasetFile) and returns an engine over the built index.
// The context is checked between construction phases; cooperative
// cancellation inside a build is not supported — cancel promptness is a
// query-path guarantee.
//
// With WithIndexDir, BuildIndex first tries the snapshot cache: a matching
// snapshot is loaded instead of building (BuildStats.FromSnapshot reports
// which happened), and a fresh build is saved back to the cache.
func BuildIndex(ctx context.Context, method string, opts ...Option) (*Engine, error) {
	cfg := defaultConfig()
	cfg.apply(opts)
	if err := cfg.resolveQuerySpec(); err != nil {
		return nil, err
	}
	d, err := cfg.dataset()
	if err != nil {
		return nil, err
	}
	if err := core.Canceled(ctx); err != nil {
		return nil, err
	}
	m, err := core.New(method, cfg.opts)
	if err != nil {
		return nil, err
	}
	coll := core.NewCollection(d.d)

	if _, ok := m.(core.Persistable); ok && cfg.indexDir != "" {
		if cached, bs, ok := loadCached(cfg.cachePath(method, coll), coll); ok {
			return cfg.engine(cached, coll, d, bs)
		}
	}
	bs, err := core.BuildInstrumented(m, coll)
	if err != nil {
		return nil, fmt.Errorf("hydra: building %s: %w", method, err)
	}
	if err := core.Canceled(ctx); err != nil {
		return nil, err
	}
	if p, ok := m.(core.Persistable); ok && cfg.indexDir != "" {
		if err := core.SaveSnapshotFile(p, coll, cfg.cachePath(method, coll)); err != nil {
			return nil, fmt.Errorf("hydra: caching %s snapshot: %w", method, err)
		}
	}
	return cfg.engine(m, coll, d, bs)
}

// LoadIndex restores an index snapshot (written by Engine.SaveIndex or the
// hydra-build CLI) over the configured dataset (WithData or
// WithDatasetFile) and returns an engine over it. The snapshot names its
// own method and build options; loading verifies the collection
// fingerprint, so a snapshot never silently answers for the wrong data.
// The loaded engine answers queries bit-identically to the engine that was
// saved.
//
// Load failures are classified, not just reported: transient errors are
// retried with backoff (WithSnapshotRetries), a corrupt file is quarantined
// aside (path + ".quarantined") so no later start trips over it again, and
// with WithRebuildFallback any unloadable snapshot is replaced by a fresh
// build instead of failing the start. Without the fallback the error wraps
// one of the ErrSnapshot* sentinels (see errors.go) for the caller to route
// on.
func LoadIndex(ctx context.Context, path string, opts ...Option) (*Engine, error) {
	cfg := defaultConfig()
	cfg.apply(opts)
	if err := cfg.resolveQuerySpec(); err != nil {
		return nil, err
	}
	d, err := cfg.dataset()
	if err != nil {
		return nil, err
	}
	if err := core.Canceled(ctx); err != nil {
		return nil, err
	}
	coll := core.NewCollection(d.d)
	// Startup hygiene: cap the *.quarantined files earlier corrupt loads
	// left beside this snapshot, so repeated corruption cannot accumulate
	// into a full disk (age- and count-bounded; see persist.SweepQuarantined).
	persist.SweepQuarantined(filepath.Dir(path), 0, 0)
	m, bs, err := cfg.loadSnapshot(ctx, path, coll)
	if err != nil {
		if cfg.rebuildMethod != "" {
			return cfg.rebuildFallback(ctx, path, d, err)
		}
		return nil, fmt.Errorf("hydra: loading %s: %w", path, err)
	}
	return cfg.engine(m, coll, d, bs)
}

// defaultSnapshotRetries is the total attempt count of a snapshot load when
// WithSnapshotRetries is not given.
const defaultSnapshotRetries = 3

// snapshotBackoff is the wait before the first retry; it doubles per
// attempt, so the default schedule is 5ms then 10ms.
const snapshotBackoff = 5 * time.Millisecond

// loadSnapshot opens and decodes a snapshot with the config's resilience
// policy: transient failures (anything not known-permanent — e.g. a flaky
// filesystem read) are retried up to the attempt budget with doubling
// backoff honoring ctx; corruption, version skew, dataset mismatch, unknown
// method, and a missing file fail immediately. A final corrupt error
// quarantines the file aside before returning.
func (c *config) loadSnapshot(ctx context.Context, path string, coll *core.Collection) (core.Persistable, BuildStats, error) {
	attempts := c.snapshotRetries
	if attempts <= 0 {
		attempts = defaultSnapshotRetries
	}
	backoff := snapshotBackoff
	var err error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			select {
			case <-ctx.Done():
				return nil, BuildStats{}, ctx.Err()
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		var m core.Persistable
		var bs BuildStats
		m, bs, err = openSnapshot(path, coll)
		if err == nil {
			return m, bs, nil
		}
		if permanentLoadError(err) {
			break
		}
	}
	if IsCorruptSnapshot(err) {
		if qpath, qerr := persist.Quarantine(path); qerr == nil {
			err = fmt.Errorf("%w (quarantined to %s)", err, qpath)
			persist.SweepQuarantined(filepath.Dir(path), 0, 0)
		}
	}
	return nil, BuildStats{}, err
}

// openSnapshot is one load attempt: open, decode, attach, close.
func openSnapshot(path string, coll *core.Collection) (core.Persistable, BuildStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, BuildStats{}, err
	}
	defer f.Close()
	return core.LoadIndexInstrumented(f, coll)
}

// rebuildFallback replaces an unloadable snapshot with a fresh build of the
// configured fallback method over a clean collection (failed decode
// attempts may have charged counters on the first one), then best-effort
// re-saves the snapshot so the next start loads instead of building.
func (c *config) rebuildFallback(ctx context.Context, path string, d *Dataset, loadErr error) (*Engine, error) {
	if err := core.Canceled(ctx); err != nil {
		return nil, err
	}
	m, err := core.New(c.rebuildMethod, c.opts)
	if err != nil {
		return nil, fmt.Errorf("hydra: rebuild fallback after snapshot failure (%v): %w", loadErr, err)
	}
	coll := core.NewCollection(d.d)
	bs, err := core.BuildInstrumented(m, coll)
	if err != nil {
		return nil, fmt.Errorf("hydra: rebuilding %s after snapshot failure (%v): %w", c.rebuildMethod, loadErr, err)
	}
	if p, ok := m.(core.Persistable); ok {
		// Reseeding the snapshot is best effort: a read-only index dir must
		// not fail a start the rebuild just saved.
		_ = core.SaveSnapshotFile(p, coll, path)
	}
	return c.engine(m, coll, d, bs)
}

func (c *config) engine(m core.Method, coll *core.Collection, d *Dataset, bs BuildStats) (*Engine, error) {
	// Workers was already handed to the method factory through core.Options.
	e := &Engine{
		m: m, coll: coll, data: d,
		device:            c.device,
		build:             bs,
		batchWorkers:      c.resolvedBatchWorkers(),
		partialOnDeadline: c.partialOnDeadline,
		workers:           c.opts.Workers,
		spec:              c.spec,
		shardIndex:        c.shardIndex,
		shardCount:        c.shardCount,
		shardOffset:       c.shardOffset,
	}
	if c.ingestDir != "" {
		// WithIngestDir: attach the WAL and replay any crash-interrupted
		// tail before the engine answers its first query.
		if err := e.enableIngest(c); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// cachePath derives the snapshot-cache entry for (method, collection,
// options) through the shared core helper — the same key format
// hydra-bench uses, so the two cache directories are interchangeable.
func (c *config) cachePath(method string, coll *core.Collection) string {
	return core.SnapshotCachePath(c.indexDir, method, coll, c.opts)
}

// loadCached loads a cache entry if present and intact; a stale or damaged
// entry reports !ok and the caller rebuilds. A corrupt entry is additionally
// quarantined aside (rename to path + ".quarantined") so the rebuild's
// write-then-rename reseeds a clean path and the damage stays inspectable.
func loadCached(path string, coll *core.Collection) (core.Method, BuildStats, bool) {
	f, err := os.Open(path)
	if err != nil {
		return nil, BuildStats{}, false
	}
	m, bs, err := core.LoadIndexInstrumented(f, coll)
	f.Close()
	if err != nil {
		if IsCorruptSnapshot(err) {
			if _, qerr := persist.Quarantine(path); qerr == nil {
				persist.SweepQuarantined(filepath.Dir(path), 0, 0)
			}
		}
		return nil, BuildStats{}, false
	}
	return m, bs, true
}

// SnapshotName maps a method name to its conventional snapshot file name
// ("VA+file" → "va-file.hydx") — hydra-build's multi-method output layout
// and the WithIndexDir cache share the same stems.
func SnapshotName(method string) string {
	return persist.FileStem(method) + persist.SnapshotExt
}

// SaveIndex writes the engine's built index as a versioned snapshot that
// LoadIndex (or hydra-query -index) can restore, with write-then-rename so
// a crash cannot leave a truncated file. It fails for methods without
// build state (see PersistableMethods).
func (e *Engine) SaveIndex(path string) error {
	p, ok := e.m.(core.Persistable)
	if !ok {
		return fmt.Errorf("hydra: method %s does not support snapshots", e.m.Name())
	}
	// Exclude concurrent appends: a snapshot captures a batch boundary.
	if ing := e.ing; ing != nil {
		ing.mu.RLock()
		defer ing.mu.RUnlock()
	}
	return core.SaveSnapshotFile(p, e.coll, path)
}

// Method returns the engine's method name (as used in the paper).
func (e *Engine) Method() string { return e.m.Name() }

// Len returns the number of series in the engine's collection.
func (e *Engine) Len() int { return e.coll.File.Len() }

// SeriesLen returns the collection's series length — the length every
// query must have.
func (e *Engine) SeriesLen() int { return e.coll.File.SeriesLen() }

// Device returns the engine's simulated disk profile.
func (e *Engine) Device() Device { return e.device }

// ShardInfo reports the engine's placement in a sharded collection
// (WithShard): its shard index, the shard count, and the collection offset
// of its first series — the value that maps shard-local match IDs back to
// full-collection positions. sharded is false for engines over a whole
// collection (all other returns are then zero).
func (e *Engine) ShardInfo() (index, count, offset int, sharded bool) {
	return e.shardIndex, e.shardCount, e.shardOffset, e.shardCount > 0
}

// BuildStats returns the cost of constructing (or loading) the engine's
// index; zero-valued for scan engines, which have no build phase.
func (e *Engine) BuildStats() BuildStats { return e.build }

// Query answers a k-nearest-neighbors query: the k collection series
// closest to q in Euclidean distance, sorted by ascending distance (ties by
// ascending ID). By default the answer is exact; an engine configured with
// WithApproxMode answers in that mode instead, trading answer quality for
// traversal work under the mode's guarantee (see the option's doc).
//
// Cancellation: the query polls ctx at block granularity and returns
// ctx.Err() within one block of work after a cancel or deadline — the
// engine stays consistent and immediately reusable. Queries that complete
// are bit-identical to the same query under context.Background().
//
// The steady-state query path does not allocate beyond the returned
// matches (per-query scratch is pooled), so a serving loop can run it at
// full rate without GC pressure.
func (e *Engine) Query(ctx context.Context, q []float32, k int) ([]Match, error) {
	matches, _, err := e.QueryWithStats(ctx, q, k)
	return matches, err
}

// QueryWithStats is Query plus the paper's per-query cost counters
// (distance calculations, pruning, simulated I/O, CPU time).
//
// Under WithPartialOnDeadline, a query whose context deadline expires
// mid-run returns the best-so-far candidates with Stats.Partial set and a
// nil error instead of context.DeadlineExceeded (see the option's doc for
// the exact contract).
//
// On a non-exact engine (WithApproxMode), Stats reports the answering mode,
// its guarantee parameters, the nodes visited, and which early stop (if
// any) ended the traversal. Approximate modes take precedence over
// WithPartialOnDeadline's degraded path — a budgeted query is already its
// own degraded mode; use WithTimeBudget rather than a context deadline to
// bound an approximate query's latency.
func (e *Engine) QueryWithStats(ctx context.Context, q []float32, k int) ([]Match, QueryStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// On an ingesting engine, hold the append/query exclusion for read: a
	// query sees whole appended batches or none, never a half-applied one.
	if ing := e.ing; ing != nil {
		ing.mu.RLock()
		defer ing.mu.RUnlock()
	}
	return e.queryWithStatsLocked(ctx, q, k)
}

// queryWithStatsLocked is QueryWithStats after the ingest read lock: the
// mode dispatch without locking, for callers (QueryStream) that already
// hold the lock across a multi-step query and must not re-enter RLock
// under a possibly blocked writer.
func (e *Engine) queryWithStatsLocked(ctx context.Context, q []float32, k int) ([]Match, QueryStats, error) {
	if e.spec.Mode != core.ModeExact {
		return core.RunQueryApprox(ctx, e.m, e.coll, series.Series(q), k, e.spec)
	}
	if e.partialOnDeadline {
		if _, ok := ctx.Deadline(); ok {
			return e.queryPartial(ctx, q, k)
		}
	}
	return core.RunQuery(ctx, e.m, e.coll, series.Series(q), k)
}

// WithQueryOptions derives an engine that shares this engine's built index
// and collection but answers queries under different query-time options —
// the per-request mode mechanism behind hydra-serve's request fields.
// Deriving is cheap (no data is copied) and the derived engine is as safe
// for concurrent use as its parent; both stay independently usable.
//
// Only query-time options take effect: the approximate-mode set
// (WithApproxMode, WithEpsilon, WithDelta, WithNodeBudget, WithTimeBudget),
// WithBatchWorkers, WithDevice, and WithPartialOnDeadline. The
// approximation mode is specified entirely by the given options — it does
// not inherit the parent's mode, so an empty option list derives an exact
// engine. Build-time options (dataset, method parameters, snapshot policy)
// are ignored: the index is already built.
func (e *Engine) WithQueryOptions(opts ...Option) (*Engine, error) {
	cfg := defaultConfig()
	cfg.device = e.device
	cfg.batchWorkers = e.batchWorkers
	cfg.partialOnDeadline = e.partialOnDeadline
	cfg.opts.Seed = e.spec.Seed
	cfg.apply(opts)
	if err := cfg.resolveQuerySpec(); err != nil {
		return nil, err
	}
	d := *e
	d.device = cfg.device
	d.batchWorkers = cfg.resolvedBatchWorkers()
	d.partialOnDeadline = cfg.partialOnDeadline
	d.spec = cfg.spec
	return &d, nil
}

// queryPartial is the degraded-mode query path: it runs the query through
// whatever best-so-far machinery the method offers, and on deadline expiry
// folds that progress into a partial answer instead of an error.
//
//   - Streaming methods (the scans): the stream emissions are folded into a
//     k-NN heap as they arrive; on expiry the fold holds exactly the
//     best-so-far heap the stream path would have reported, bit-identically.
//   - ng-approximate index methods: the approximate descent (one
//     root-to-leaf path, cheap) runs first as a floor, then the exact
//     query; on expiry the descent's answer is returned. The head-start
//     charges its own simulated I/O — the cost of an answer floor.
//   - Everything else degrades to an empty partial answer on expiry.
//
// Queries that complete return the exact answer, bit-identical to Query
// without the option. Explicit cancellation still fails with ctx.Err().
func (e *Engine) queryPartial(ctx context.Context, q []float32, k int) ([]Match, QueryStats, error) {
	sq := series.Series(q)
	switch m := e.m.(type) {
	case core.KNNStreamer:
		fold := newBestFold(k)
		matches, qs, err := core.RunQueryStream(ctx, m, e.coll, sq, k, fold.add)
		if errors.Is(err, context.DeadlineExceeded) {
			qs.Partial = true
			return fold.results(), qs, nil
		}
		return matches, qs, err
	case core.ApproxMethod:
		approx, aqs, aerr := m.ApproxKNN(ctx, sq, k)
		if aerr != nil {
			if errors.Is(aerr, context.DeadlineExceeded) {
				aqs.Partial = true
				return nil, aqs, nil
			}
			return nil, aqs, aerr
		}
		matches, qs, err := core.RunQuery(ctx, e.m, e.coll, sq, k)
		if errors.Is(err, context.DeadlineExceeded) {
			aqs.Partial = true
			return approx, aqs, nil
		}
		return matches, qs, err
	default:
		matches, qs, err := core.RunQuery(ctx, e.m, e.coll, sq, k)
		if errors.Is(err, context.DeadlineExceeded) {
			qs.Partial = true
			return nil, qs, nil
		}
		return matches, qs, err
	}
}

// bestFold accumulates stream emissions into a k-NN heap so an expired
// query can answer with its progress. Emissions arrive concurrently from
// scan workers; the mutex makes the fold safe, and the deterministic
// (distance, then ascending ID) heap makes the folded top-k independent of
// arrival order.
type bestFold struct {
	mu  sync.Mutex
	set *core.KNNSet
}

func newBestFold(k int) *bestFold {
	return &bestFold{set: core.NewKNNSet(k)}
}

// add folds one emitted candidate. The heap stores squared distances, the
// stream reports true ones; squaring here and square-rooting in results is
// exact round-tripping under IEEE-754 (sqrt(x·x) == |x| in round-to-nearest
// absent overflow), so folded distances are bit-identical to the stream's.
func (f *bestFold) add(m Match) {
	f.mu.Lock()
	f.set.Add(m.ID, m.Dist*m.Dist)
	f.mu.Unlock()
}

// results returns the folded best-so-far, sorted like every exact answer.
func (f *bestFold) results() []Match {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.set.Results()
}

// QueryBatch answers a batch of queries concurrently on up to
// WithBatchWorkers workers, amortizing per-query scratch through the
// engine's pools. The returned slice is aligned with qs.
//
// Partial-failure semantics (pinned by the public test suite): queries are
// isolated — one query's failure does not abandon its siblings — and
// results[i] is non-nil exactly for the queries that succeeded. The
// returned error is the first failure by query index (nil when everything
// succeeded); QueryBatchErrors reports every query's own error. Cancelling
// ctx stops the batch promptly: in-flight queries return ctx.Err() within
// one block, queued queries never start, and the batch reports the context
// error.
func (e *Engine) QueryBatch(ctx context.Context, qs [][]float32, k int) ([][]Match, error) {
	results, errs := e.QueryBatchErrors(ctx, qs, k)
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// QueryBatchErrors is QueryBatch with per-query error attribution: both
// returned slices are aligned with qs, and exactly one of results[i],
// errs[i] is non-nil for each query — so a serving layer can tell a
// malformed query (fix the input) from a deadline overrun (retry) within
// one batch.
func (e *Engine) QueryBatchErrors(ctx context.Context, qs [][]float32, k int) ([][]Match, []error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([][]Match, len(qs))
	errs := make([]error, len(qs))
	if len(qs) == 0 {
		return results, errs
	}
	workers := e.batchWorkers
	if workers > len(qs) {
		workers = len(qs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				qi := int(next.Add(1)) - 1
				if qi >= len(qs) {
					return
				}
				if err := core.Canceled(ctx); err != nil {
					errs[qi] = err
					continue // mark every remaining claimed query cancelled
				}
				matches, err := e.queryIsolated(ctx, qs[qi], k)
				if err != nil {
					errs[qi] = err
					continue
				}
				results[qi] = matches
			}
		}()
	}
	wg.Wait()
	return results, errs
}

// queryIsolated is Query with a panic boundary: a panicking query (a method
// bug, or an armed query/panic faultpoint) becomes that query's own
// ErrQueryPanic instead of unwinding the batch worker and taking its
// sibling queries — or the process — down with it. Queries only read the
// built index, so a recovered panic cannot have corrupted engine state.
func (e *Engine) queryIsolated(ctx context.Context, q []float32, k int) (m []Match, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("%w: %v", ErrQueryPanic, p)
		}
	}()
	return e.Query(ctx, q, k)
}
