package hydra

import (
	"context"
	"math"
	"testing"
)

// TestShardRangeTilesCollection pins the split convention: for any count,
// the shard ranges tile [0, n) in order with no gaps or overlap.
func TestShardRangeTilesCollection(t *testing.T) {
	for _, n := range []int{1, 7, 100, 999} {
		for count := 1; count <= 8; count++ {
			next := 0
			for i := 0; i < count; i++ {
				lo, hi := ShardRange(n, i, count)
				if lo != next || hi < lo || hi > n {
					t.Fatalf("n=%d count=%d shard %d: range [%d,%d) after %d", n, count, i, lo, hi, next)
				}
				next = hi
			}
			if next != n {
				t.Fatalf("n=%d count=%d: shards cover only [0,%d)", n, count, next)
			}
		}
	}
}

// TestWithShardOption pins the option path: an engine opened with WithShard
// serves exactly its slice and reports its placement.
func TestWithShardOption(t *testing.T) {
	d, err := Generate("synthetic", 100, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Open("", WithData(d), WithShard(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := ShardRange(100, 1, 3)
	if e.Len() != hi-lo {
		t.Fatalf("shard engine serves %d series, want %d", e.Len(), hi-lo)
	}
	idx, count, offset, sharded := e.ShardInfo()
	if !sharded || idx != 1 || count != 3 || offset != lo {
		t.Fatalf("ShardInfo = (%d,%d,%d,%v), want (1,3,%d,true)", idx, count, offset, sharded, lo)
	}
	if _, _, _, sharded := mustOpen(t, d).ShardInfo(); sharded {
		t.Fatal("whole-collection engine reports sharded")
	}
	if _, err := Open("", WithData(d), WithShard(3, 3)); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
}

func mustOpen(t *testing.T, d *Dataset) *Engine {
	t.Helper()
	e, err := Open("", WithData(d))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestShardedGatherBitIdentical is the conformance core of scatter-gather:
// per-shard engines queried independently, IDs remapped by the shard
// offset, answers folded through Gather — the merged top-k must equal the
// single whole-collection engine's answer bit for bit, for a scan and for
// an index method.
func TestShardedGatherBitIdentical(t *testing.T) {
	d, err := Generate("synthetic", 240, 64, 7)
	if err != nil {
		t.Fatal(err)
	}
	queries := ControlledWorkload(d, 6, 0.3, 11)

	build := func(method string, data *Dataset) *Engine {
		t.Helper()
		if method == "UCR-Suite" {
			e, err := Open("", WithData(data))
			if err != nil {
				t.Fatal(err)
			}
			return e
		}
		e, err := BuildIndex(context.Background(), method, WithData(data), WithLeafSize(16))
		if err != nil {
			t.Fatal(err)
		}
		return e
	}

	for _, method := range []string{"UCR-Suite", "DSTree", "VA+file"} {
		whole := build(method, d)
		const shards = 3
		type shardEngine struct {
			e      *Engine
			offset int
		}
		var parts []shardEngine
		for i := 0; i < shards; i++ {
			sd, offset, err := d.Shard(i, shards)
			if err != nil {
				t.Fatal(err)
			}
			parts = append(parts, shardEngine{e: build(method, sd), offset: offset})
		}
		for qi := 0; qi < queries.Len(); qi++ {
			q := queries.Query(qi)
			const k = 5
			want, err := whole.Query(context.Background(), q, k)
			if err != nil {
				t.Fatal(err)
			}
			g := NewGather(k)
			for si, p := range parts {
				local, err := p.e.Query(context.Background(), q, k)
				if err != nil {
					t.Fatal(err)
				}
				global := make([]Match, len(local))
				for i, m := range local {
					global[i] = Match{ID: m.ID + p.offset, Dist: m.Dist}
				}
				g.Fold(string(rune('a'+si)), global)
			}
			got := g.Results()
			if len(got) != len(want) {
				t.Fatalf("%s q%d: merged %d matches, want %d", method, qi, len(got), len(want))
			}
			for i := range got {
				if got[i].ID != want[i].ID || math.Float64bits(got[i].Dist) != math.Float64bits(want[i].Dist) {
					t.Fatalf("%s q%d rank %d: merged %+v, single-engine %+v", method, qi, i, got[i], want[i])
				}
			}
		}
	}
}
