// Command benchdiff compares two BENCH_*.json artifacts written by
// hydra-bench -out and fails (exit status 1) when the newer run regresses
// the per-query cost beyond a threshold — the CI-able guard that keeps the
// performance trajectory recorded in BENCH_baseline.json honest.
//
// Usage:
//
//	benchdiff [-threshold 0.10] old.json new.json
//
// Compared metrics are ns/query and bytes/query from the artifacts' mem
// profile. A metric missing from the old artifact (pre-ns_per_query files)
// is reported but never fails the run. When the two artifacts were produced
// on different hosts or SIMD backends, benchdiff still prints the
// comparison but flags it, since cross-backend numbers are not like for
// like.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// hostInfo mirrors the host block of a BENCH_*.json artifact.
type hostInfo struct {
	GOOS        string   `json:"goos"`
	GOARCH      string   `json:"goarch"`
	MaxProcs    int      `json:"maxprocs"`
	CPUFeatures []string `json:"cpu_features"`
	SIMDBackend string   `json:"simd_backend"`
}

// benchFile is the subset of the hydra-bench artifact schema benchdiff
// reads.
type benchFile struct {
	ID    string   `json:"id"`
	Scale float64  `json:"scale_divisor"`
	Host  hostInfo `json:"host"`
	Mem   struct {
		Queries        int64   `json:"queries"`
		BytesPerQuery  float64 `json:"bytes_per_query"`
		AllocsPerQuery float64 `json:"allocs_per_query"`
		NsPerQuery     float64 `json:"ns_per_query"`
	} `json:"mem"`
	// Serve holds the hydraload serving-path block: client-observed tail
	// latencies, compared like the cost metrics (higher is worse) whenever
	// both artifacts carry a serve run.
	Serve struct {
		Requests   int64   `json:"requests"`
		P50Micros  float64 `json:"p50_us"`
		P99Micros  float64 `json:"p99_us"`
		P999Micros float64 `json:"p999_us"`
	} `json:"serve"`
	// Quality holds answer-quality metrics (recall/MAP per method and mode)
	// where higher is better — compared with the regression direction
	// inverted relative to the cost metrics.
	Quality map[string]float64 `json:"quality"`
}

// metric is one compared quantity of the mem profile. optional marks
// metrics absent from artifacts written before the field existed (encoded
// as zero by JSON); a zero baseline of a non-optional metric is a real
// measurement — all-pooled workloads legitimately record 0 bytes/query —
// and regressing away from it still fails.
type metric struct {
	name     string
	old, new float64
	optional bool
}

// diff compares the two artifacts metric by metric and returns the report
// lines plus the regressions exceeding threshold (a fraction: 0.10 allows
// +10%). Metrics absent from the old artifact (zero) are informational.
func diff(old, new benchFile, threshold float64) (lines, regressions []string) {
	if old.ID != new.ID || old.Scale != new.Scale {
		lines = append(lines, fmt.Sprintf("warning: comparing %s@1/%g against %s@1/%g",
			new.ID, new.Scale, old.ID, old.Scale))
	}
	if old.Host.SIMDBackend != new.Host.SIMDBackend {
		lines = append(lines, fmt.Sprintf("warning: SIMD backend changed %q -> %q; numbers are not like for like",
			old.Host.SIMDBackend, new.Host.SIMDBackend))
	}
	metrics := []metric{
		{name: "ns/query", old: old.Mem.NsPerQuery, new: new.Mem.NsPerQuery, optional: true},
		{name: "bytes/query", old: old.Mem.BytesPerQuery, new: new.Mem.BytesPerQuery},
	}
	// Serve tail latencies join the comparison only when both runs drove
	// load: a kernel-bench artifact has no serving block and must not drown
	// the report in missing-metric lines.
	if old.Serve.Requests > 0 && new.Serve.Requests > 0 {
		metrics = append(metrics,
			metric{name: "serve p50/us", old: old.Serve.P50Micros, new: new.Serve.P50Micros, optional: true},
			metric{name: "serve p99/us", old: old.Serve.P99Micros, new: new.Serve.P99Micros, optional: true},
			metric{name: "serve p999/us", old: old.Serve.P999Micros, new: new.Serve.P999Micros, optional: true},
		)
	}
	for _, m := range metrics {
		if m.old == 0 {
			if m.optional {
				lines = append(lines, fmt.Sprintf("%-12s baseline missing (old artifact predates this metric); new = %.0f", m.name, m.new))
				continue
			}
			line := fmt.Sprintf("%-12s %14.0f -> %14.0f", m.name, m.old, m.new)
			if m.new > 0 {
				line += "  REGRESSION"
				regressions = append(regressions, fmt.Sprintf("%s regressed from a zero baseline to %.0f", m.name, m.new))
			}
			lines = append(lines, line)
			continue
		}
		change := (m.new - m.old) / m.old
		line := fmt.Sprintf("%-12s %14.0f -> %14.0f  (%+.1f%%)", m.name, m.old, m.new, 100*change)
		if change > threshold {
			line += "  REGRESSION"
			regressions = append(regressions, fmt.Sprintf("%s regressed %.1f%% (threshold %.0f%%)",
				m.name, 100*change, 100*threshold))
		}
		lines = append(lines, line)
	}
	qLines, qRegressions := diffQuality(old.Quality, new.Quality, threshold)
	return append(lines, qLines...), append(regressions, qRegressions...)
}

// diffQuality compares the answer-quality metrics of two artifacts. Quality
// is a higher-is-better dimension (recall, MAP, node-savings ratios), so
// the regression direction is inverted: a metric falling more than
// threshold below its baseline fails the run exactly like a ns/query
// increase does. Metrics only one side carries are informational — a newly
// added mode or method must not fail a diff against an older baseline.
func diffQuality(old, new map[string]float64, threshold float64) (lines, regressions []string) {
	keys := make([]string, 0, len(old))
	for k := range old {
		if _, ok := new[k]; ok {
			keys = append(keys, k)
		} else {
			lines = append(lines, fmt.Sprintf("quality %-32s dropped from the new artifact (old = %.4f)", k, old[k]))
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		o, n := old[k], new[k]
		line := fmt.Sprintf("quality %-32s %8.4f -> %8.4f", k, o, n)
		if o > 0 {
			drop := (o - n) / o
			line += fmt.Sprintf("  (%+.1f%%)", -100*drop)
			if drop > threshold {
				line += "  REGRESSION"
				regressions = append(regressions, fmt.Sprintf("quality %s fell %.1f%% below baseline (threshold %.0f%%)",
					k, 100*drop, 100*threshold))
			}
		}
		lines = append(lines, line)
	}
	return lines, regressions
}

func readBench(path string) (benchFile, error) {
	var b benchFile
	blob, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(blob, &b); err != nil {
		return b, fmt.Errorf("%s: %w", path, err)
	}
	return b, nil
}

func main() {
	threshold := flag.Float64("threshold", 0.10, "maximum allowed relative increase per metric (0.10 = +10%)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold 0.10] old.json new.json")
		os.Exit(2)
	}
	old, err := readBench(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	cur, err := readBench(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	lines, regressions := diff(old, cur, *threshold)
	fmt.Printf("benchdiff %s (%d queries) vs %s (%d queries)\n",
		flag.Arg(0), old.Mem.Queries, flag.Arg(1), cur.Mem.Queries)
	for _, l := range lines {
		fmt.Println(l)
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "benchdiff: %s\n", r)
		}
		os.Exit(1)
	}
}
