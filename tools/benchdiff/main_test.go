package main

import (
	"strings"
	"testing"
)

func bench(id string, ns, bytes float64, backend string) benchFile {
	var b benchFile
	b.ID = id
	b.Scale = 1024
	b.Host.SIMDBackend = backend
	b.Mem.NsPerQuery = ns
	b.Mem.BytesPerQuery = bytes
	return b
}

func TestDiffPassesWithinThreshold(t *testing.T) {
	old := bench("fig3", 1000, 64, "avx2+fma")
	cur := bench("fig3", 1050, 64, "avx2+fma")
	_, regs := diff(old, cur, 0.10)
	if len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
}

func TestDiffFlagsRegression(t *testing.T) {
	old := bench("fig3", 1000, 64, "avx2+fma")
	cur := bench("fig3", 1201, 64, "avx2+fma")
	_, regs := diff(old, cur, 0.10)
	if len(regs) != 1 || !strings.Contains(regs[0], "ns/query") {
		t.Fatalf("want one ns/query regression, got %v", regs)
	}
	cur = bench("fig3", 900, 80, "avx2+fma")
	_, regs = diff(old, cur, 0.10)
	if len(regs) != 1 || !strings.Contains(regs[0], "bytes/query") {
		t.Fatalf("want one bytes/query regression, got %v", regs)
	}
}

func TestDiffImprovementNeverFails(t *testing.T) {
	old := bench("fig3", 1000, 64, "avx2+fma")
	cur := bench("fig3", 400, 8, "avx2+fma")
	_, regs := diff(old, cur, 0.10)
	if len(regs) != 0 {
		t.Fatalf("improvement flagged as regression: %v", regs)
	}
}

func TestDiffMissingBaselineMetricIsInformational(t *testing.T) {
	old := bench("fig3", 0, 64, "avx2+fma") // pre-ns_per_query artifact
	cur := bench("fig3", 5000, 64, "avx2+fma")
	lines, regs := diff(old, cur, 0.10)
	if len(regs) != 0 {
		t.Fatalf("missing baseline treated as regression: %v", regs)
	}
	found := false
	for _, l := range lines {
		if strings.Contains(l, "baseline missing") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing-baseline note absent from %v", lines)
	}
}

func TestDiffWarnsOnBackendChange(t *testing.T) {
	old := bench("fig3", 1000, 64, "avx2+fma")
	cur := bench("fig3", 1000, 64, "go")
	lines, _ := diff(old, cur, 0.10)
	found := false
	for _, l := range lines {
		if strings.Contains(l, "not like for like") {
			found = true
		}
	}
	if !found {
		t.Fatalf("backend-change warning absent from %v", lines)
	}
}

func TestDiffQualityRegressionDirectionInverted(t *testing.T) {
	// Quality metrics are higher-is-better: a recall drop beyond threshold
	// fails, a recall gain never does.
	old := bench("approx", 1000, 64, "avx2+fma")
	old.Quality = map[string]float64{"recall/ADS+/delta-eps": 1.0}
	cur := bench("approx", 1000, 64, "avx2+fma")
	cur.Quality = map[string]float64{"recall/ADS+/delta-eps": 0.85}
	_, regs := diff(old, cur, 0.10)
	if len(regs) != 1 || !strings.Contains(regs[0], "recall/ADS+/delta-eps") {
		t.Fatalf("want one recall regression, got %v", regs)
	}
	cur.Quality["recall/ADS+/delta-eps"] = 0.95 // within threshold
	if _, regs = diff(old, cur, 0.10); len(regs) != 0 {
		t.Fatalf("within-threshold recall drop flagged: %v", regs)
	}
	cur.Quality["recall/ADS+/delta-eps"] = 1.0
	cur.Mem.NsPerQuery = 400 // faster AND as accurate: no regression
	if _, regs = diff(old, cur, 0.10); len(regs) != 0 {
		t.Fatalf("improvement flagged: %v", regs)
	}
}

func TestDiffQualityMissingSidesInformational(t *testing.T) {
	// A mode/method present on only one side (new experiment or trimmed
	// baseline) must not fail the diff — only report it.
	old := bench("approx", 1000, 64, "avx2+fma")
	old.Quality = map[string]float64{"recall/SFA/ng": 0.9}
	cur := bench("approx", 1000, 64, "avx2+fma")
	cur.Quality = map[string]float64{"recall/SFA/delta-eps": 0.99}
	lines, regs := diff(old, cur, 0.10)
	if len(regs) != 0 {
		t.Fatalf("one-sided quality metrics flagged: %v", regs)
	}
	found := false
	for _, l := range lines {
		if strings.Contains(l, "dropped from the new artifact") {
			found = true
		}
	}
	if !found {
		t.Fatalf("dropped-metric note absent from %v", lines)
	}
}

func TestDiffZeroBytesBaselineStillGates(t *testing.T) {
	// A genuinely zero bytes/query baseline (fully pooled workload) is a
	// real measurement: allocating again must fail, staying at zero must
	// pass. Only ns/query gets the missing-baseline grace (the field
	// postdates the first artifacts).
	old := bench("fig3", 1000, 0, "avx2+fma")
	cur := bench("fig3", 1000, 32, "avx2+fma")
	_, regs := diff(old, cur, 0.10)
	if len(regs) != 1 || !strings.Contains(regs[0], "zero baseline") {
		t.Fatalf("want zero-baseline regression, got %v", regs)
	}
	cur = bench("fig3", 1000, 0, "avx2+fma")
	if _, regs = diff(old, cur, 0.10); len(regs) != 0 {
		t.Fatalf("zero -> zero flagged: %v", regs)
	}
}
