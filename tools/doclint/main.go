// Command doclint enforces the repository's documentation bar, the
// CI docs job's teeth: every package must carry a package comment, and
// every exported top-level identifier (funcs, methods, types, consts, vars)
// must have a doc comment. It uses only the standard library's go/ast.
//
// Usage:
//
//	go run ./tools/doclint <dir> [<dir>...]
//
// Each argument is walked recursively; directories named testdata, vendor,
// or starting with "." or "_" are skipped, as are _test.go files. Exits 1
// after printing every violation as file:line: message.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	dirs := map[string]bool{}
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if path != root && (name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
				dirs[filepath.Dir(path)] = true
			}
			return nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			os.Exit(2)
		}
	}

	sorted := make([]string, 0, len(dirs))
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)

	var violations []string
	for _, dir := range sorted {
		violations = append(violations, lintDir(dir)...)
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Println(v)
		}
		fmt.Fprintf(os.Stderr, "doclint: %d violation(s)\n", len(violations))
		os.Exit(1)
	}
}

// lintDir checks one package directory and returns its violations.
func lintDir(dir string) []string {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return []string{fmt.Sprintf("%s: parse error: %v", dir, err)}
	}
	var out []string
	for _, pkg := range pkgs {
		hasPkgDoc := false
		names := make([]string, 0, len(pkg.Files))
		for name := range pkg.Files {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			f := pkg.Files[name]
			if f.Doc != nil {
				hasPkgDoc = true
			}
			out = append(out, lintFile(fset, f)...)
		}
		if !hasPkgDoc {
			out = append(out, fmt.Sprintf("%s: package %s has no package comment", dir, pkg.Name))
		}
	}
	return out
}

// lintFile reports exported top-level declarations without doc comments.
func lintFile(fset *token.FileSet, f *ast.File) []string {
	var out []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			if d.Recv != nil && !receiverExported(d.Recv) {
				continue // method on an unexported type
			}
			kind := "function"
			if d.Recv != nil {
				kind = "method"
			}
			report(d.Pos(), kind, d.Name.Name)
		case *ast.GenDecl:
			groupDoc := d.Doc != nil
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && !groupDoc && s.Doc == nil && s.Comment == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					for _, n := range s.Names {
						if n.IsExported() && !groupDoc && s.Doc == nil && s.Comment == nil {
							report(n.Pos(), declKind(d.Tok), n.Name)
						}
					}
				}
			}
		}
	}
	return out
}

func declKind(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}

// receiverExported reports whether a method's receiver base type is exported
// (methods on unexported types are not part of the package API).
func receiverExported(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}
