// Command hydraload is the load generator for hydra-serve: it drives
// concurrent /query (or /batch) traffic at a server — single-engine or
// scatter-gather coordinator — and records the client-observed tail
// latencies (p50/p99/p999), throughput, and error/partial ratios. Against a
// coordinator it also scrapes /statusz afterwards, so the artifact carries
// the per-shard retry/hedge/breaker counters the run produced.
//
// Usage:
//
//	hydraload -addr http://127.0.0.1:8080 -data synth.hyd -duration 5s -concurrency 8 -k 10 \
//	          -id serve-3shard -out BENCH_serve.json
//
// SIGINT/SIGTERM stop the run at the next request boundary instead of
// killing it: the summary line still prints and the partial BENCH artifact
// is still written, so an interrupted run keeps its numbers.
//
// The artifact is a BENCH_*.json in the same family hydra-bench writes:
// tools/benchdiff compares the serve block (tail latencies, cost direction)
// and the quality block (success and exact ratios, higher is better)
// against a committed baseline, which makes serving-path regressions —
// latency blowups, silent partial answers, lost shards — CI-gateable like
// any kernel regression.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"hydra"
	"hydra/internal/experiments"
	"hydra/internal/persist"
)

// queryRequest / responses mirror the hydra-serve wire contract (the cmd
// package is not importable; the JSON shape is the stable surface).
type queryRequest struct {
	Query []float32 `json:"query"`
	K     int       `json:"k"`
}

type batchRequest struct {
	Queries [][]float32 `json:"queries"`
	K       int         `json:"k"`
}

type queryResponse struct {
	Matches []struct {
		ID   int     `json:"id"`
		Dist float64 `json:"dist"`
	} `json:"matches"`
	Partial bool `json:"partial"`
}

// shardStat mirrors one entry of the coordinator's /statusz shard block.
type shardStat struct {
	Addr          string `json:"addr"`
	Breaker       string `json:"breaker"`
	Requests      int64  `json:"requests"`
	Failures      int64  `json:"failures"`
	Retries       int64  `json:"retries"`
	Hedges        int64  `json:"hedges"`
	BreakerOpens  int64  `json:"breaker_opens"`
	ProbeFailures int64  `json:"probe_failures"`
	P50Micros     int64  `json:"p50_us"`
	P99Micros     int64  `json:"p99_us"`
}

type statuszResponse struct {
	Mode   string      `json:"mode"`
	Shards []shardStat `json:"shards"`
}

// serveStats is the serve block of the artifact: the run's shape, the
// client-observed latency distribution, and (coordinator targets) the
// per-shard fan-out counters.
type serveStats struct {
	Addr        string  `json:"addr"`
	DurationSec float64 `json:"duration_sec"`
	Concurrency int     `json:"concurrency"`
	K           int     `json:"k"`
	Batch       int     `json:"batch,omitempty"`

	Requests int64   `json:"requests"`
	Errors   int64   `json:"errors"`
	Partials int64   `json:"partials"`
	QPS      float64 `json:"throughput_qps"`

	P50Micros  float64 `json:"p50_us"`
	P99Micros  float64 `json:"p99_us"`
	P999Micros float64 `json:"p999_us"`

	Shards []shardStat `json:"shards,omitempty"`
}

// memBlock keeps the artifact comparable by benchdiff's existing cost gate:
// ns/query here is the mean client-observed latency.
type memBlock struct {
	Queries    int64   `json:"queries"`
	NsPerQuery float64 `json:"ns_per_query"`
}

type artifact struct {
	ID        string               `json:"id"`
	Title     string               `json:"title"`
	WallClock string               `json:"wall_clock"`
	Host      experiments.HostInfo `json:"host"`
	Mem       memBlock             `json:"mem"`
	Serve     serveStats           `json:"serve"`
	Quality   map[string]float64   `json:"quality"`
}

func main() {
	var (
		addr        = flag.String("addr", "http://127.0.0.1:8080", "hydra-serve base URL")
		dataPath    = flag.String("data", "", "collection file queries are drawn from (required)")
		duration    = flag.Duration("duration", 5*time.Second, "how long to drive load")
		concurrency = flag.Int("concurrency", 8, "concurrent request workers")
		k           = flag.Int("k", 10, "neighbors per query")
		batch       = flag.Int("batch", 0, "queries per /batch request (0 = one /query per request)")
		warmup      = flag.Int("warmup", 20, "unrecorded warmup requests")
		seed        = flag.Int64("seed", 1, "query selection seed")
		id          = flag.String("id", "serve-load", "artifact id")
		out         = flag.String("out", "", "write the BENCH json artifact here")
	)
	flag.Parse()
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "hydraload: "+format+"\n", args...)
		os.Exit(1)
	}
	if *dataPath == "" {
		fail("-data is required")
	}
	d, err := hydra.OpenDataset(*dataPath)
	if err != nil {
		fail("%v", err)
	}
	base := strings.TrimRight(*addr, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	hc := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: *concurrency * 2}}

	// One request body per collection series, pre-marshaled so the load loop
	// measures the server, not the client's JSON encoder.
	bodies := prebuild(d, *k, *batch)
	path := "/query"
	if *batch > 0 {
		path = "/batch"
	}

	// SIGINT/SIGTERM end the run early instead of killing it: the workers
	// stop at the next request boundary and the partial artifact (with the
	// summary line) is still flushed — an interrupted load run keeps its
	// numbers.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rng := rand.New(rand.NewSource(*seed))
	for i := 0; i < *warmup; i++ {
		_, _, _ = shoot(hc, base+path, bodies[rng.Intn(len(bodies))])
	}

	var (
		requests, errors, partials atomic.Int64
		mu                         sync.Mutex
		latencies                  []time.Duration
	)
	start := time.Now()
	deadline := start.Add(*duration)
	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wrng := rand.New(rand.NewSource(*seed + int64(w)*7919))
			local := make([]time.Duration, 0, 1024)
			for time.Now().Before(deadline) && ctx.Err() == nil {
				t0 := time.Now()
				ok, partial, err := shoot(hc, base+path, bodies[wrng.Intn(len(bodies))])
				requests.Add(1)
				if err != nil || !ok {
					errors.Add(1)
					continue
				}
				local = append(local, time.Since(t0))
				if partial {
					partials.Add(1)
				}
			}
			mu.Lock()
			latencies = append(latencies, local...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "hydraload: interrupted, flushing partial results")
	}

	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	total := requests.Load()
	okCount := int64(len(latencies))
	stats := serveStats{
		Addr:        base,
		DurationSec: elapsed.Seconds(),
		Concurrency: *concurrency,
		K:           *k,
		Batch:       *batch,
		Requests:    total,
		Errors:      errors.Load(),
		Partials:    partials.Load(),
		QPS:         float64(total) / elapsed.Seconds(),
		P50Micros:   quantileUs(latencies, 0.50),
		P99Micros:   quantileUs(latencies, 0.99),
		P999Micros:  quantileUs(latencies, 0.999),
		Shards:      scrapeStatusz(hc, base),
	}

	fmt.Printf("hydraload: %d requests in %s (%.0f qps, %d workers) against %s%s\n",
		total, elapsed.Round(time.Millisecond), stats.QPS, *concurrency, base, path)
	fmt.Printf("latency: p50 %.0fus  p99 %.0fus  p999 %.0fus  (errors %d, partial %d)\n",
		stats.P50Micros, stats.P99Micros, stats.P999Micros, stats.Errors, stats.Partials)
	for _, s := range stats.Shards {
		fmt.Printf("shard %s: %d requests, %d failures, %d retries, %d hedges, %d breaker opens (breaker %s)\n",
			s.Addr, s.Requests, s.Failures, s.Retries, s.Hedges, s.BreakerOpens, s.Breaker)
	}

	if *out == "" {
		return
	}
	var meanNs float64
	if okCount > 0 {
		var sum time.Duration
		for _, l := range latencies {
			sum += l
		}
		meanNs = float64(sum.Nanoseconds()) / float64(okCount)
	}
	quality := map[string]float64{}
	if total > 0 {
		quality["serve/success_ratio"] = float64(total-stats.Errors) / float64(total)
	}
	if okCount > 0 {
		quality["serve/exact_ratio"] = float64(okCount-stats.Partials) / float64(okCount)
	}
	art := artifact{
		ID:        *id,
		Title:     fmt.Sprintf("hydra-serve load: %d workers, k=%d over %s", *concurrency, *k, *duration),
		WallClock: elapsed.Round(time.Millisecond).String(),
		Host:      experiments.Host(),
		Mem:       memBlock{Queries: okCount, NsPerQuery: meanNs},
		Serve:     stats,
		Quality:   quality,
	}
	blob, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		fail("%v", err)
	}
	if err := persist.WriteFileAtomic(*out, append(blob, '\n'), 0o644); err != nil {
		fail("%v", err)
	}
	fmt.Printf("wrote %s\n", *out)
}

// prebuild marshals one request body per starting series: single queries,
// or batches of `batch` consecutive (wrapping) series.
func prebuild(d *hydra.Dataset, k, batch int) [][]byte {
	bodies := make([][]byte, d.Len())
	for i := 0; i < d.Len(); i++ {
		var body any
		if batch > 0 {
			qs := make([][]float32, batch)
			for j := range qs {
				qs[j] = d.Series((i + j) % d.Len())
			}
			body = batchRequest{Queries: qs, K: k}
		} else {
			body = queryRequest{Query: d.Series(i), K: k}
		}
		blob, err := json.Marshal(body)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hydraload: %v\n", err)
			os.Exit(1)
		}
		bodies[i] = blob
	}
	return bodies
}

// shoot sends one request and reports (answered 200, partial, transport
// error). Non-200 answers count as errors via ok=false.
func shoot(hc *http.Client, url string, body []byte) (ok, partial bool, err error) {
	resp, err := hc.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return false, false, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil || resp.StatusCode != http.StatusOK {
		return false, false, err
	}
	var qr queryResponse
	if json.Unmarshal(data, &qr) == nil && qr.Partial {
		return true, true, nil
	}
	// Batch responses share the top-level "partial" field; any per-result
	// parse mismatch still counts the request as answered.
	return true, false, nil
}

// scrapeStatusz fetches the coordinator's per-shard counters; nil against a
// single-engine server (404) or on any error — the load numbers stand on
// their own.
func scrapeStatusz(hc *http.Client, base string) []shardStat {
	resp, err := hc.Get(base + "/statusz")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var st statuszResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil
	}
	return st.Shards
}

// quantileUs returns the q-th quantile of the sorted latency slice in
// microseconds (0 when empty).
func quantileUs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx].Nanoseconds()) / 1e3
}
